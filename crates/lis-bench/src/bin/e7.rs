//! E7: the activity-driven cycle kernel on the stress mesh.
//!
//! The 8×8 gate-level SP mesh (the E6 hot path) is simulated under
//! streaming, bursty, hotspot, saturating back-pressured, and
//! periodically back-pressured traffic, once per settle engine — the
//! legacy full sweep, the dependency-aware worklist, the
//! activity-driven kernel (cross-cycle quiescence skipping + sharded
//! selective ticks), and the fast-forward kernel (activity-driven plus
//! an event wheel that jumps the clock over fully quiescent spans).
//! Every configuration must deliver bit-identical token streams; the
//! activity-family rows additionally report how much of the mesh they
//! skipped and how many cycles they jumped.
//!
//! `--json <path>` records the rows (e.g. BENCH_e7.json; wall-clock
//! fields are volatile and excluded from the CI drift diff) and
//! `--check` enforces the headline bars: activity-driven ≥ 2× the
//! worklist engine's kcyc/s on the back-pressured stress run, and
//! fast-forward ≥ 10× activity-driven on the periodically
//! back-pressured run.

use lis_bench::{print_rows, section, threads_from_args};
use lis_topo::{assert_e7_streams, e7_bench, E7Config};
use serde::{Serialize, Value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let check = args.iter().any(|a| a == "--check");
    let threads = threads_from_args(&args);

    let cfg = E7Config::default();
    section("E7 — activity-driven kernel vs worklist vs full sweep (stress mesh)");
    println!(
        "mesh {}x{} gate-level SP shells, compute latency {}, hop {} / budget {} (threads {threads})",
        cfg.rows, cfg.cols, cfg.compute_latency, cfg.hop_distance, cfg.relay_budget
    );
    let report = e7_bench(&cfg, threads);
    println!(
        "{} pearls, {} relay stations, {} components / {} signals",
        report.pearls, report.relay_stations, report.components, report.signals
    );

    section("E7 — engine × traffic sweep");
    print_rows(&report.sweep);
    assert_e7_streams(&report.sweep);

    section("E7 — back-pressured and periodic stress runs (the headlines)");
    print_rows(&report.check);
    assert_e7_streams(&report.check);
    println!(
        "speedup activity@1 vs worklist@1: {:.2}x",
        report.speedup_activity_vs_worklist
    );
    println!(
        "speedup fast-forward@1 vs activity@1 (periodic): {:.2}x",
        report.speedup_fast_forward_vs_activity
    );

    if let Some(path) = &json_path {
        let baseline = Value::Object(vec![
            ("e7_config".into(), report.config.to_value()),
            ("pearls".into(), Value::UInt(report.pearls as u64)),
            (
                "relay_stations".into(),
                Value::UInt(report.relay_stations as u64),
            ),
            ("components".into(), Value::UInt(report.components as u64)),
            ("signals".into(), Value::UInt(report.signals as u64)),
            ("e7_sweep".into(), report.sweep.to_value()),
            ("e7_check".into(), report.check.to_value()),
            (
                "speedup_activity_vs_worklist".into(),
                Value::Float(report.speedup_activity_vs_worklist),
            ),
            (
                "speedup_fast_forward_vs_activity".into(),
                Value::Float(report.speedup_fast_forward_vs_activity),
            ),
        ]);
        let json = serde_json::to_string_pretty(&baseline).expect("serialize E7 rows");
        std::fs::write(path, json + "\n").expect("write JSON baseline");
        eprintln!("wrote {path}");
    }

    if check {
        assert!(
            report.speedup_activity_vs_worklist >= 2.0,
            "activity-driven must simulate the back-pressured stress mesh at >=2x \
             the worklist kcyc/s (measured {:.2}x)",
            report.speedup_activity_vs_worklist
        );
        assert!(
            report.speedup_fast_forward_vs_activity >= 10.0,
            "the event wheel must simulate the periodically back-pressured mesh at >=10x \
             the cycle-by-cycle activity kcyc/s (measured {:.2}x)",
            report.speedup_fast_forward_vs_activity
        );
        println!(
            "--check passed: {:.2}x >= 2x, {:.2}x >= 10x, streams bit-identical across \
             engines and thread counts",
            report.speedup_activity_vs_worklist, report.speedup_fast_forward_vs_activity
        );
    }
}

//! Regenerates the structural content of **Figure 1** (Carloni et al.'s
//! combinational patient process) and **Figure 2** (the
//! synchronization-processor wrapper) from the actual generators, plus
//! ASCII renderings of the two architectures.

use lis_bench::section;
use lis_core::experiment::figures;

fn main() {
    section("Figure 1 / Figure 2 — wrapper architectures (regenerated)");
    let figs = figures().expect("figure generation");
    for f in &figs {
        println!("{f}");
    }

    section("Figure 1 — Carloni et al. patient process (ASCII)");
    println!(
        r#"
          Combinatorial-logic based synchronization wrapper
   stopout <--+------------------+-----------------+--> stopin
              |  +------------+  |  +-----------+  |
   voidin --->|  | Input port |--+->|    IP     |--+-->| Output port |---> voidout
   data_in -->|  +------------+     |  (pearl)  |      +-------------+--> data_out
              |          enable --->| clock     |
              +---[ AND of all voids/stops ]----+
"#
    );

    section("Figure 2 — processor-based synchronization wrapper (ASCII)");
    println!(
        r#"
            Processor based synchronization wrapper
   data_in -->[ Input port ]==================>[    IP     ]==>[ Output port ]--> data_out
               | pop ^  | not_empty             ^ enable        ^ push | not_full
               v     |  v                       |               |      v
              +--------------------------------------------------------+
              |                SYNC PROCESSOR (3-state CFSMD)           |
              |   op address ==> [ Operations Memory (async ROM) ]      |
              |   operation word = input-mask | output-mask | run count |
              +--------------------------------------------------------+
"#
    );
}

//! Fleet: lane-parallel scenario fleets vs sequential solo runs.
//!
//! The 8×8 gate-level SP stress mesh (the E6/E7 hot path) is simulated
//! under 64 independent traffic scenarios — per-lane regimes and stall
//! seeds — twice: once as 64 solo SoCs run back to back, and once as a
//! single lane-batched fleet whose gate-level shells execute all 64
//! scenarios through one shared packed instruction stream (64 lanes per
//! `u64`, one bitwise op per gate for the whole batch). Every fleet
//! lane must be bit-identical — streams, checksums, violation counts —
//! to its solo twin.
//!
//! `--json <path>` records the rows (e.g. BENCH_fleet.json; wall-clock
//! fields are volatile and excluded from the CI drift diff) and
//! `--check` enforces the headline bar: the fleet's aggregate scenario
//! throughput (scenario-cycles per wall second) must reach ≥ 8× the
//! sequential solo runs'.

use lis_bench::{print_rows, section, threads_from_args};
use lis_topo::{assert_fleet_lanes, fleet_bench, FleetBenchConfig};
use serde::{Serialize, Value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let check = args.iter().any(|a| a == "--check");
    let threads = threads_from_args(&args);

    let cfg = FleetBenchConfig::default();
    section("Fleet — 64 lane-batched scenarios vs sequential solo runs (stress mesh)");
    println!(
        "mesh {}x{} gate-level SP shells, {} lanes x {} cycles, hop {} / budget {} (threads {threads})",
        cfg.rows, cfg.cols, cfg.lanes, cfg.cycles, cfg.hop_distance, cfg.relay_budget
    );
    let report = fleet_bench(&cfg, threads);
    println!(
        "{} pearls, {} relay stations/lane, {} batches, {} components / {} signals",
        report.stats.nodes,
        report.stats.relay_stations_per_lane,
        report.stats.batches,
        report.stats.components,
        report.stats.signals
    );

    section("Fleet — aggregate scenario throughput");
    print_rows(&[report.solo.clone(), report.fleet.clone()]);
    assert_fleet_lanes(&report);
    println!(
        "speedup fleet vs sequential solo (scenario-cycles/s): {:.2}x; \
         all {} lanes bit-identical to their solo twins",
        report.speedup_scenario_throughput, report.config.lanes
    );

    if let Some(path) = &json_path {
        let baseline = Value::Object(vec![
            ("fleet_config".into(), report.config.to_value()),
            ("fleet_stats".into(), report.stats.to_value()),
            ("fleet_solo".into(), report.solo.to_value()),
            ("fleet_fleet".into(), report.fleet.to_value()),
            (
                "lanes_bit_identical".into(),
                Value::Bool(report.lanes_bit_identical),
            ),
            (
                "speedup_scenario_throughput".into(),
                Value::Float(report.speedup_scenario_throughput),
            ),
        ]);
        let json = serde_json::to_string_pretty(&baseline).expect("serialize fleet rows");
        std::fs::write(path, json + "\n").expect("write JSON baseline");
        eprintln!("wrote {path}");
    }

    if check {
        assert!(
            report.speedup_scenario_throughput >= 8.0,
            "the lane-batched fleet must deliver >=8x the aggregate scenario \
             throughput of sequential solo runs (measured {:.2}x)",
            report.speedup_scenario_throughput
        );
        println!(
            "--check passed: {:.2}x >= 8x, {} lanes bit-identical to solo twins",
            report.speedup_scenario_throughput, report.config.lanes
        );
    }
}

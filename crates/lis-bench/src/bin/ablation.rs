//! E6: design ablations.
//!
//! 1. FSM state-encoding (one-hot vs binary) on the Viterbi schedule —
//!    the baseline's area/fmax trade-off — and the shift-register
//!    wrapper (Casu & Macchiarulo) corrupting data under irregularity.
//! 2. The NoC-scale topology ablation: SP-with-ROM-compression vs
//!    SP-uncompressed vs per-pearl FSM synchronizers, swept across mesh
//!    scales with schedule length growing alongside — the regime where
//!    the paper's flat-cost claim becomes decisive. Every variant also
//!    drives the generated mesh gate-level through the sharded
//!    scheduler, checked token-exact against the dataflow oracle.
//! 3. The 10⁵-cycle long-schedule stress run: an 8×8 mesh of gate-level
//!    SP shells under bursty traffic and relay back-pressure.
//!
//! `--json <path>` records the rows (e.g. BENCH_e6.json; wall-clock
//! fields are volatile and excluded from the CI drift diff). The E6
//! headline claim — compressed-SP slice/ROM cost flat within ±10%
//! across scales, FSM cost growing monotonically, stress run
//! token-exact — is asserted unconditionally: a regression aborts the
//! binary.

use lis_bench::{print_rows, section, threads_from_args};
use lis_core::experiment::ablation;
use lis_synth::TechParams;
use lis_topo::{assert_e6_claim, stress_run, topology_ablation, AblationBenchConfig, StressConfig};
use serde::{Serialize, Value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let threads = threads_from_args(&args);
    let params = TechParams::default();

    section("E6 — classic ablations (FSM encodings, static-wrapper fragility)");
    let classic = ablation(&params).expect("ablation");
    print_rows(&classic);

    section("E6 — synchronizer cost & behaviour across NoC topology scale");
    let topo_cfg = AblationBenchConfig::default();
    println!(
        "square meshes, gate-level shells, bursty stall {:.2}, hop distance {} / budget {} (threads {threads})",
        topo_cfg.stall, topo_cfg.hop_distance, topo_cfg.relay_budget
    );
    let topo_rows = topology_ablation(&topo_cfg, &params, threads).expect("topology ablation");
    print_rows(&topo_rows);
    assert_e6_claim(&topo_rows, 0.10);
    println!(
        "claim holds: compressed-SP cost flat (±10%), FSM/uncompressed growing, streams exact"
    );

    section("E6 — long-schedule stress run (SP run counters + relay back-pressure)");
    let stress_cfg = StressConfig::default();
    let stress = stress_run(&stress_cfg, threads);
    println!("{stress}");
    assert!(stress.token_exact, "stress streams must be token-exact");
    assert_eq!(stress.violations, 0, "stress must stay protocol-clean");
    assert!(
        stress.pearls >= 64 && stress.cycles >= 100_000,
        "stress bar: >=64 pearls for >=1e5 cycles"
    );

    if let Some(path) = &json_path {
        let baseline = Value::Object(vec![
            ("e6_classic".into(), classic.to_value()),
            ("topo_config".into(), topo_cfg.to_value()),
            ("topo_ablation".into(), topo_rows.to_value()),
            ("stress_config".into(), stress_cfg.to_value()),
            ("stress".into(), stress.to_value()),
        ]);
        let json = serde_json::to_string_pretty(&baseline).expect("serialize E6 rows");
        std::fs::write(path, json + "\n").expect("write JSON baseline");
        eprintln!("wrote {path}");
    }
}

//! E6: design ablations.
//!
//! 1. FSM state-encoding (one-hot vs binary) on the Viterbi schedule —
//!    the baseline's area/fmax trade-off.
//! 2. The shift-register wrapper (Casu & Macchiarulo) under increasing
//!    stream irregularity — correct at zero irregularity, corrupting
//!    data beyond it, which is why it cannot replace the SP in general.

use lis_bench::{print_rows, section};
use lis_core::experiment::ablation;
use lis_synth::TechParams;

fn main() {
    section("E6 — ablations");
    let rows = ablation(&TechParams::default()).expect("ablation");
    print_rows(&rows);
}

//! E5: latency-insensitivity in action, plus the settle-path throughput
//! baseline of the component kernel.
//!
//! Part 1 (correctness): a relayed pipeline runs under every
//! protocol-respecting wrapper model across channel latencies and stall
//! rates; the informative stream must be identical in every
//! configuration (Carloni's latency equivalence), while throughput
//! degrades gracefully.
//!
//! Part 2 (performance): a many-pearl SoC of gate-level SP shells is
//! simulated under the legacy full-sweep settle (1 thread), the
//! dependency-aware worklist scheduler (1 thread), and the scheduler
//! fanned across the work-stealing pool (N threads). All engines must
//! produce bit-identical token streams; `--json <path>` records the rows
//! (e.g. BENCH_e5.json; wall-clock fields are volatile and excluded from
//! the CI drift diff) and `--check` additionally enforces the ≥2x
//! speedup bar of worklist@N over full-sweep@1.

use lis_bench::{print_rows, section, threads_from_args};
use lis_core::experiment::{settle_bench, throughput_sweep, SettleBenchConfig};
use lis_sim::SettleMode;
use serde::{Serialize, Value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let check = args.iter().any(|a| a == "--check");
    let threads = threads_from_args(&args);

    section("E5 — throughput & correctness vs channel latency and stalls");
    let rows = throughput_sweep(&[0, 1, 2, 4, 8], &[0.0, 0.2, 0.5], 4000);
    print_rows(&rows);

    section("Summary");
    let intact = rows.iter().filter(|r| r.stream_intact).count();
    println!(
        "{intact}/{} configurations latency-equivalent to the reference (must be all)",
        rows.len()
    );
    let worst = rows
        .iter()
        .min_by(|a, b| a.tokens_per_cycle.total_cmp(&b.tokens_per_cycle))
        .expect("rows");
    println!(
        "lowest throughput: {} at latency={} stall={:.1} ({:.4} tokens/cycle)",
        worst.model, worst.latency, worst.stall, worst.tokens_per_cycle
    );

    section("E5 — settle-path throughput (many-pearl SoC, gate-level SP shells)");
    let cfg = SettleBenchConfig::default();
    println!(
        "{} chains × {} pearls, {} wire hops + {} relay(s) per link, {} cycles, stall {:.1}",
        cfg.chains, cfg.depth, cfg.wire_hops, cfg.relays, cfg.cycles, cfg.stall
    );
    let engines = [
        (SettleMode::FullSweep, 1usize),
        (SettleMode::Worklist, 1),
        (SettleMode::Worklist, threads),
        (SettleMode::ActivityDriven, 1),
        (SettleMode::ActivityDriven, threads),
    ];
    let (shape, bench_rows) = settle_bench(&cfg, &engines);
    println!(
        "{} components / {} signals -> {} groups in {} levels ({} cyclic, width {})",
        shape.components,
        shape.signals,
        shape.sched_groups,
        shape.sched_levels,
        shape.sched_cyclic_groups,
        shape.sched_max_level_width
    );
    print_rows(&bench_rows);
    for pair in bench_rows.windows(2) {
        assert_eq!(
            (pair[0].received, pair[0].checksum),
            (pair[1].received, pair[1].checksum),
            "engines must deliver identical streams"
        );
    }
    let baseline = &bench_rows[0];
    let worklist_1t = &bench_rows[1];
    let worklist_nt = &bench_rows[2];
    let activity_1t = &bench_rows[3];
    let speedup_1t = worklist_1t.kcps / baseline.kcps;
    let speedup_nt = worklist_nt.kcps / baseline.kcps;
    let speedup_act = activity_1t.kcps / baseline.kcps;
    println!(
        "speedup vs full-sweep@1: worklist@1 {speedup_1t:.2}x, worklist@{threads} {speedup_nt:.2}x, \
         activity@1 {speedup_act:.2}x"
    );

    if let Some(path) = &json_path {
        let baseline_json = Value::Object(vec![
            ("e5_sweep".into(), rows.to_value()),
            ("settle_bench_config".into(), cfg.to_value()),
            ("settle_bench_shape".into(), shape.to_value()),
            ("settle_bench_rows".into(), bench_rows.to_value()),
            ("speedup_worklist_1t".into(), Value::Float(speedup_1t)),
            ("speedup_worklist_nt".into(), Value::Float(speedup_nt)),
            ("speedup_activity_1t".into(), Value::Float(speedup_act)),
            ("threads_nt".into(), Value::UInt(threads as u64)),
        ]);
        let json = serde_json::to_string_pretty(&baseline_json).expect("serialize E5 rows");
        std::fs::write(path, json + "\n").expect("write JSON baseline");
        eprintln!("wrote {path}");
    }

    if check {
        assert_eq!(intact, rows.len(), "every configuration must stay intact");
        // The algorithmic (1-thread) speedup is thread-count- and
        // machine-independent; the threads=N row additionally reflects
        // the runner's real parallelism. Gate on the better of the two
        // so a noisy 2-vCPU runner cannot flake the bar.
        let best = speedup_nt.max(speedup_1t);
        assert!(
            best >= 2.0,
            "worklist must be >=2x the single-threaded full-sweep baseline \
             on the many-pearl settle path (measured 1t {speedup_1t:.2}x, \
             {threads}t {speedup_nt:.2}x)"
        );
        println!("--check passed: {best:.2}x >= 2x");
    }
}

//! E5: latency-insensitivity in action. A relayed pipeline is run under
//! every protocol-respecting wrapper model across channel latencies and
//! stall rates; the informative stream must be identical in every
//! configuration (Carloni's latency equivalence), while throughput
//! degrades gracefully.

use lis_bench::{print_rows, section};
use lis_core::experiment::throughput_sweep;

fn main() {
    section("E5 — throughput & correctness vs channel latency and stalls");
    let rows = throughput_sweep(&[0, 1, 2, 4, 8], &[0.0, 0.2, 0.5], 4000);
    print_rows(&rows);

    section("Summary");
    let intact = rows.iter().filter(|r| r.stream_intact).count();
    println!(
        "{intact}/{} configurations latency-equivalent to the reference (must be all)",
        rows.len()
    );
    let worst = rows
        .iter()
        .min_by(|a, b| a.tokens_per_cycle.total_cmp(&b.tokens_per_cycle))
        .expect("rows");
    println!(
        "lowest throughput: {} at latency={} stall={:.1} ({:.4} tokens/cycle)",
        worst.model, worst.latency, worst.stall, worst.tokens_per_cycle
    );
}

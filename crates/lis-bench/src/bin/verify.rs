//! Verify — bounded model checking of the SP wrapper protocol.
//!
//! Runs the `lis-verify` explorer over every registered closed
//! configuration: the correct gate-level and behavioural SP systems
//! must come out clean for *all* adversary stall schedules up to the
//! depth bound, and every seeded protocol mutant must be caught. This
//! is the paper's central correctness claim — wrapped systems are
//! patient, i.e. functionally insensitive to any stall/latency
//! assignment — checked exhaustively-within-bound instead of sampled.
//!
//! Each exploration shards its BFS levels across `--threads`
//! configuration twins (default: `LIS_SIM_THREADS`, else 1) with the
//! configuration's partial-order and symmetry reductions on; the merge
//! is deterministic, so every structural number is identical at any
//! thread count.
//!
//! `--json <path>` records the structural results (e.g.
//! BENCH_verify.json; wall-clock, rate, and thread-count fields are
//! volatile and excluded from the CI drift diff), `--corpus <dir>`
//! re-emits each mutant's minimized counterexample as JSON (the
//! committed corpus under `crates/lis-verify/tests/counterexamples/`),
//! and `--check` enforces the bars:
//!
//! * every correct configuration explores to depth ≥ 16 with zero
//!   violations and no truncation;
//! * the correct configurations together cover ≥ 10⁵ deduplicated
//!   states;
//! * on the join workhorse, a reduced and an unreduced reference walk
//!   agree state-for-state (the reductions are census-preserving), and
//!   the reduction counters attest an effective speedup ≥ 4× whenever
//!   ≥ 4 threads are in play;
//! * the symmetric join folds mirror states (`sym_folds > 0`);
//! * every mutant is caught with the expected verdict kind, and its
//!   minimized counterexample still reproduces.

use lis_bench::section;
use lis_verify::{
    build_config, explore_pool, ExploreOptions, ExploreReport, CORRECT_CONFIGS, MUTANT_CONFIGS,
};
use serde::{Serialize, Value};
use std::time::Instant;

/// Depth the acceptance bars require.
const REQUIRED_DEPTH: u32 = 16;
/// Deduplicated-state floor across the correct configurations.
const REQUIRED_STATES: u64 = 100_000;
/// Depth bound for the mutant hunts. Deeper than [`REQUIRED_DEPTH`]
/// because a fault needs *detection latency* on top of its trigger: a
/// token dropped at the wrapper's input edge is only observed once its
/// successor has crossed the whole period-3 pipeline to the sink
/// (~8 more cycles).
const MUTANT_DEPTH: u32 = 24;
/// Depth of the reduced-vs-unreduced census cross-check on the join
/// workhorse (kept below its full depth: the unreduced reference walk
/// pays for every pruned transition).
const REFERENCE_DEPTH: u32 = 12;

/// Per-config exploration depth: every config must clear
/// [`REQUIRED_DEPTH`]; the packed join config is the state-space
/// workhorse (3 controlled edges, two skewed branches) and carries the
/// deduplicated-state floor, while the cheaper configs go deeper than
/// required for margin.
fn default_depth(config: &str) -> u32 {
    match config {
        "spj" => 18,
        "spj-sym" => 18,
        _ => 20,
    }
}

fn expected_kinds(config: &str) -> &'static [&'static str] {
    match config {
        // A lost token surfaces either as a sink order fault (its
        // successor arrives out of sequence) or — under enough
        // back-pressure — as a conservation fault first: every drop
        // leaves a phantom token in the ledger's in-flight count, and
        // the BFS reaches the capacity overflow before the skip has
        // crossed the pipeline to the sink. Duplicates are symmetric.
        "mut-drop" => &["sequencing", "conservation"],
        "mut-dup" => &["sequencing", "conservation"],
        "mut-stuck" => &["deadlock"],
        "mut-eager" => &["sequencing"],
        _ => &[],
    }
}

struct Run {
    report: ExploreReport,
    wall_ms: u128,
    threads: usize,
}

impl Run {
    /// Deduplicated states per wall-clock second.
    fn states_per_sec(&self) -> u64 {
        self.report.states * 1000 / (self.wall_ms.max(1) as u64)
    }

    /// Deterministic speedup evidence: the thread fan-out times the
    /// POR work-avoidance factor `(transitions + por_pruned) /
    /// transitions` — the unreduced single-thread walk executes that
    /// many times this run's per-thread transition load.
    fn effective_speedup(&self) -> f64 {
        let r = &self.report;
        let avoided = (r.transitions + r.por_pruned) as f64 / (r.transitions.max(1)) as f64;
        self.threads as f64 * avoided
    }
}

fn run_config(name: &str, opts: &ExploreOptions, threads: usize) -> Run {
    let mut twins: Vec<_> = (0..threads.max(1))
        .map(|_| build_config(name).expect("registered config"))
        .collect();
    let start = Instant::now();
    let report = explore_pool(&mut twins, opts);
    Run {
        report,
        wall_ms: start.elapsed().as_millis(),
        threads: threads.max(1),
    }
}

fn report_value(run: &Run) -> Value {
    let r = &run.report;
    Value::Object(vec![
        ("config".into(), Value::Str(r.config.clone())),
        ("depth".into(), Value::UInt(u64::from(r.depth))),
        ("edges".into(), r.edges.to_value()),
        ("states".into(), Value::UInt(r.states)),
        ("transitions".into(), Value::UInt(r.transitions)),
        ("dedup_hits".into(), Value::UInt(r.dedup_hits)),
        ("por_pruned".into(), Value::UInt(r.por_pruned)),
        ("sym_folds".into(), Value::UInt(r.sym_folds)),
        ("deadlock_checks".into(), Value::UInt(r.deadlock_checks)),
        ("total_violations".into(), Value::UInt(r.total_violations)),
        ("truncated".into(), Value::Bool(r.truncated)),
        (
            "first_kind".into(),
            match r.counterexamples.first() {
                Some(cx) => Value::Str(cx.kind.clone()),
                None => Value::Null,
            },
        ),
        (
            "minimized_schedule_len".into(),
            match r.counterexamples.first() {
                Some(cx) => Value::UInt(cx.schedule.len() as u64),
                None => Value::Null,
            },
        ),
        ("threads".into(), Value::UInt(run.threads as u64)),
        ("states_per_sec".into(), Value::UInt(run.states_per_sec())),
        ("wall_ms".into(), Value::UInt(run.wall_ms as u64)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .map(|i| args.get(i + 1).expect("--json needs a path").clone());
    let check = args.iter().any(|a| a == "--check");
    let corpus_dir = args
        .iter()
        .position(|a| a == "--corpus")
        .map(|i| args.get(i + 1).expect("--corpus needs a directory").clone());
    let depth_override: Option<u32> = args
        .iter()
        .position(|a| a == "--depth")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--depth needs a number"));
    let threads: usize = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads needs a number"))
        .or_else(|| {
            std::env::var("LIS_SIM_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1)
        .max(1);

    section("Verify — correct configurations (every stall schedule to the depth bound)");
    println!("threads: {threads} configuration twin(s) per exploration");
    let mut correct = Vec::new();
    let mut total_states = 0u64;
    for name in CORRECT_CONFIGS {
        let run = run_config(
            name,
            &ExploreOptions {
                depth: depth_override.unwrap_or_else(|| default_depth(name)),
                ..ExploreOptions::default()
            },
            threads,
        );
        let r = &run.report;
        total_states += r.states;
        println!(
            "{:<11} depth {:>2}  states {:>8}  transitions {:>9}  dedup {:>9}  \
             pruned {:>9}  folds {:>7}  violations {}  [{} states/s, {} ms]",
            r.config,
            r.depth,
            r.states,
            r.transitions,
            r.dedup_hits,
            r.por_pruned,
            r.sym_folds,
            r.total_violations,
            run.states_per_sec(),
            run.wall_ms
        );
        correct.push(run);
    }
    println!("total deduplicated states: {total_states}");

    section("Verify — seeded mutants (each must be caught)");
    let mut mutants = Vec::new();
    for name in MUTANT_CONFIGS {
        let run = run_config(
            name,
            &ExploreOptions {
                depth: MUTANT_DEPTH,
                stop_at_first_violation: true,
                ..ExploreOptions::default()
            },
            threads,
        );
        let r = &run.report;
        match r.counterexamples.first() {
            Some(cx) => println!(
                "{:<11} CAUGHT as {:<12} after {:>6} states; minimized schedule {:?} \
                 (+{} free-run)  [{} ms]",
                r.config, cx.kind, r.states, cx.schedule, cx.free_run, run.wall_ms
            ),
            None => println!(
                "{:<11} MISSED within depth {} ({} states)  [{} ms]",
                r.config, r.depth, r.states, run.wall_ms
            ),
        }
        mutants.push(run);
    }

    if let Some(dir) = &corpus_dir {
        std::fs::create_dir_all(dir).expect("create corpus directory");
        for run in &mutants {
            if let Some(cx) = run.report.counterexamples.first() {
                let path = format!("{dir}/{}.json", run.report.config);
                std::fs::write(&path, cx.to_json() + "\n").expect("write counterexample");
                eprintln!("wrote {path}");
            }
        }
    }

    if let Some(path) = &json_path {
        let baseline = Value::Object(vec![
            (
                "verify_correct".into(),
                Value::Array(correct.iter().map(report_value).collect()),
            ),
            (
                "verify_mutants".into(),
                Value::Array(mutants.iter().map(report_value).collect()),
            ),
            ("verify_total_states".into(), Value::UInt(total_states)),
        ]);
        let json = serde_json::to_string_pretty(&baseline).expect("serialize verify rows");
        std::fs::write(path, json + "\n").expect("write JSON baseline");
        eprintln!("wrote {path}");
    }

    if check {
        for run in &correct {
            let r = &run.report;
            assert_eq!(
                r.total_violations, 0,
                "{}: the correct configuration must be violation-free, found {:?}",
                r.config, r.counterexamples
            );
            assert!(!r.truncated, "{}: exploration truncated", r.config);
            assert!(
                r.depth >= REQUIRED_DEPTH,
                "{}: depth {} below the required {REQUIRED_DEPTH}",
                r.config,
                r.depth
            );
        }
        assert!(
            total_states >= REQUIRED_STATES,
            "correct configurations covered {total_states} deduplicated states, \
             need >= {REQUIRED_STATES}"
        );

        section("Check — reduction soundness and speedup evidence");
        // Census cross-check: a reduced and an unreduced reference walk
        // of the join workhorse must agree state for state — live proof
        // that the POR guards prune only provably inert choices.
        let reduced = run_config(
            "spj",
            &ExploreOptions {
                depth: REFERENCE_DEPTH,
                ..ExploreOptions::default()
            },
            1,
        );
        let unreduced = run_config(
            "spj",
            &ExploreOptions {
                depth: REFERENCE_DEPTH,
                por: false,
                symmetry: false,
                ..ExploreOptions::default()
            },
            1,
        );
        assert_eq!(
            reduced.report.states, unreduced.report.states,
            "spj: the reduced walk must preserve the census at depth {REFERENCE_DEPTH}"
        );
        assert_eq!(
            reduced.report.transitions + reduced.report.por_pruned,
            unreduced.report.transitions,
            "spj: pruning must account for every skipped transition"
        );
        assert_eq!(reduced.report.total_violations, 0);
        assert_eq!(unreduced.report.total_violations, 0);
        println!(
            "spj census cross-check at depth {REFERENCE_DEPTH}: {} states both ways, \
             {} of {} transitions pruned",
            reduced.report.states, reduced.report.por_pruned, unreduced.report.transitions
        );

        let spj = correct
            .iter()
            .find(|run| run.report.config == "spj")
            .expect("spj is registered");
        println!(
            "spj effective speedup: {:.2}x ({} threads x {:.2} work avoidance)",
            spj.effective_speedup(),
            spj.threads,
            spj.effective_speedup() / spj.threads as f64
        );
        if threads >= 4 {
            assert!(
                spj.effective_speedup() >= 4.0,
                "spj: effective speedup {:.2} below the 4x bar at {} threads",
                spj.effective_speedup(),
                threads
            );
        }

        let spj_sym = correct
            .iter()
            .find(|run| run.report.config == "spj-sym")
            .expect("spj-sym is registered");
        assert!(
            spj_sym.report.sym_folds > 0,
            "spj-sym: the branch symmetry must fold mirror states"
        );

        for run in &mutants {
            let r = &run.report;
            let cx = r.counterexamples.first().unwrap_or_else(|| {
                panic!(
                    "{}: mutant escaped the checker within depth {}",
                    r.config, r.depth
                )
            });
            assert!(
                expected_kinds(&r.config).contains(&cx.kind.as_str()),
                "{}: caught as {:?}, expected one of {:?}",
                r.config,
                cx.kind,
                expected_kinds(&r.config)
            );
        }
        println!(
            "\nCHECK PASSED: {} correct configs clean to depth >= {REQUIRED_DEPTH} \
             ({total_states} states), {} mutants caught",
            correct.len(),
            mutants.len()
        );
    }
}

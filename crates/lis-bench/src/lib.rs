//! # lis-bench — the reproduction harness
//!
//! One binary per table/figure of Bomel et al. (DATE 2005), plus
//! Criterion benches for the flow kernels. See DESIGN.md §4 for the
//! experiment index and EXPERIMENTS.md for recorded results.
//!
//! | Binary | Artifact |
//! |---|---|
//! | `table1` | Table 1 — FSM vs SP synthesis of Viterbi/RS wrappers |
//! | `fig1_fig2` | Figures 1 & 2 — wrapper architectures, regenerated structurally |
//! | `scaling` | E3/E4 — area/fmax vs schedule length and port count |
//! | `throughput` | E5 — relayed-pipeline throughput & latency-insensitivity |
//! | `ablation` | E6 — FSM encodings; static wrapper fragility |
//! | `e7` | E7 — activity-driven kernel vs worklist vs full sweep on the stress mesh |
//! | `fleet` | Scenario fleets — 64 lane-batched traffic scenarios vs sequential solo runs |
//! | `verify` | Bounded model check — SP protocol proven clean to depth 12; mutants caught |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Parses the `--threads N` flag (default: `LIS_SIM_THREADS`, then the
/// machine's available parallelism, capped at 8).
pub fn threads_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .or_else(|| {
            std::env::var("LIS_SIM_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
        })
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map_or(1, usize::from)
                .min(8)
        })
}

/// [`threads_from_args`], materialized as the shared work-stealing pool
/// the binaries fan their independent synthesis/simulation jobs across.
pub fn pool_from_args(args: &[String]) -> lis_sim::WorkStealingPool {
    lis_sim::WorkStealingPool::new(threads_from_args(args))
}

/// Prints a titled rule-delimited section.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints any row sequence, one `Display` per line.
pub fn print_rows<T: Display>(rows: &[T]) {
    for row in rows {
        println!("{row}");
    }
}

/// A quick textual bar for ASCII charts, scaled to `max`.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = if max <= 0.0 {
        0
    } else {
        ((value / max) * width as f64).round() as usize
    };
    "#".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10), "##########");
        assert_eq!(bar(1.0, 0.0, 10), "");
    }
}

//! Bounded model checking for the SP wrapper protocol.
//!
//! The rest of the workspace *simulates* latency-insensitive systems
//! under particular stall patterns; this crate *verifies* them against
//! **every** stall pattern up to a depth bound. Small closed
//! configurations — an SP-wrapped pearl, relay stations, and an
//! adversary on each open edge — are explored breadth-first over the
//! adversary's per-cycle stall decisions ([`explore()`]), with
//! 128-bit-hashed state deduplication collapsing the decision tree
//! into the reachable state graph, 64 branches expanded per step on
//! the packed SIMD engine. Each BFS level shards across configuration
//! twins on a work-stealing pool ([`explore_pool()`]), and the
//! [`reduce`] module prunes the walk further — partial-order reduction
//! over provably inert stall choices and symmetry reduction over
//! interchangeable branches — without giving up concrete, replayable
//! counterexamples.
//!
//! Checked invariants, all consequences of the latency-insensitive
//! protocol of Bomel/Martin/Boutillon (DATE 2005) and of Carloni's
//! theory it builds on:
//!
//! * **Sequencing** — the adversary sink receives `0, 1, 2, …` mod 64:
//!   a skip is a dropped token, a repeat a duplicate ([`lis_proto::SeqSink`]).
//! * **Conservation** — the KPN ledger: tokens in flight between a
//!   source and the sink never exceed the path's physical capacity
//!   ([`ClosedConfig::ledger_violation`]).
//! * **Signalling legality** — `void ⇒ data == 0` on every channel at
//!   every settled cycle ([`ClosedConfig::signal_bad_mask`]).
//! * **Deadlock freedom** — from every reachable state, the stall-free
//!   continuation delivers a token within a bounded horizon.
//!
//! A violation is minimized into a [`Counterexample`] — a concrete
//! per-edge stall schedule from reset — serialized as JSON, and
//! replayed through the ordinary [`lis_core::Soc`] simulator
//! ([`replay_on_soc`]) so checker and simulator vouch for each other.
//! The harness validates its own teeth against seeded protocol bugs
//! ([`mutants`]): relay stations that drop, duplicate, or wedge, and an
//! SP that fires without synchronizing, each of which the explorer must
//! catch within the search depth.

pub mod config;
pub mod counterexample;
pub mod explore;
pub mod join;
pub mod mutants;
pub mod reduce;

pub use config::{
    build_config, packed_sp, packed_spj, scalar_sp, scalar_spj, ClosedConfig, Mutant,
    CORRECT_CONFIGS, MODULUS, MUTANT_CONFIGS,
};
pub use counterexample::{replay_on_soc, Counterexample, ReplayVerdict};
pub use explore::{explore, explore_pool, replay_on_checker, ExploreOptions, ExploreReport};
pub use join::JoinPearl;
pub use mutants::{EagerPolicy, MutantRelay, RelayBug};
pub use reduce::{BranchSwap, EdgeGuard, ReductionPlan};

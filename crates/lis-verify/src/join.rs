//! The checker's pearl: an identity/join IP with a built-in invariant.
//!
//! Verification configurations need a pearl whose *correct output is
//! predictable from the adversary inputs* so the sink can check
//! end-to-end sequencing. [`JoinPearl`] reads one token per period on
//! each input port, asserts they are all equal (in a KPN join fed from
//! sources emitting the same sequence, the *n*-th firing must see the
//! *n*-th token on every branch — regardless of per-branch latency),
//! and forwards input 0 unchanged. With one input it is the plain
//! identity pearl used by the single-stream configurations.

use lis_proto::{Pearl, PortValues, ViolationCounter};
use lis_schedule::{Interface, IoSchedule, PortSpec, ScheduleBuilder};

/// An equality-checking join (identity for one input): reads every
/// input, waits `latency` quiet cycles, then writes input 0's value.
/// Branch disagreement — which in a correct latency-insensitive system
/// is impossible — is recorded on a [`ViolationCounter`].
#[derive(Debug)]
pub struct JoinPearl {
    name: String,
    interface: Interface,
    schedule: IoSchedule,
    step: usize,
    held: Vec<u64>,
    mismatches: ViolationCounter,
}

impl JoinPearl {
    /// Creates the pearl with `n_in` input ports and one output port.
    ///
    /// # Panics
    ///
    /// Panics if `n_in == 0`.
    pub fn new(
        name: impl Into<String>,
        n_in: usize,
        latency: usize,
        mismatches: &ViolationCounter,
    ) -> Self {
        assert!(n_in > 0, "join needs at least one input");
        let mut ports = Vec::new();
        for i in 0..n_in {
            ports.push(PortSpec::input(format!("in{i}"), 32));
        }
        ports.push(PortSpec::output("out0", 32));
        let schedule = ScheduleBuilder::new(n_in, 1)
            .io(0..n_in, [])
            .quiet(latency)
            .io([], [0])
            .build()
            .expect("join schedule is valid");
        JoinPearl {
            name: name.into(),
            interface: Interface::new(ports),
            schedule,
            step: 0,
            held: vec![0; n_in],
            mismatches: mismatches.clone(),
        }
    }
}

impl Pearl for JoinPearl {
    fn name(&self) -> &str {
        &self.name
    }

    fn interface(&self) -> &Interface {
        &self.interface
    }

    fn schedule(&self) -> &IoSchedule {
        &self.schedule
    }

    fn clock(&mut self, inputs: &PortValues) -> PortValues {
        let io = self.schedule.at(self.step);
        let mut out = PortValues::empty(1);
        for port in io.reads.iter() {
            self.held[port] = inputs
                .get(port)
                .expect("shell guarantees scheduled inputs are present");
        }
        if !io.writes.is_empty() {
            if self.held.iter().any(|&v| v != self.held[0]) {
                self.mismatches.record();
            }
            out.set(0, self.held[0]);
        }
        self.step = (self.step + 1) % self.schedule.period();
        out
    }

    fn reset(&mut self) {
        self.step = 0;
        self.held.iter_mut().for_each(|h| *h = 0);
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.step as u64);
        out.push(self.held.len() as u64);
        out.extend(self.held.iter().copied());
    }

    fn load_state(&mut self, data: &[u64]) {
        self.step = data[0] as usize;
        let n = data[1] as usize;
        self.held = data[2..2 + n].to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_join_forwards_input_zero() {
        let counter = ViolationCounter::new();
        let mut p = JoinPearl::new("j", 1, 1, &counter);
        assert_eq!(p.schedule().period(), 3);
        let mut ins = PortValues::empty(1);
        ins.set(0, 42);
        assert_eq!(p.clock(&ins).get(0), None, "read step emits nothing");
        assert_eq!(p.clock(&PortValues::empty(1)).get(0), None, "quiet step");
        assert_eq!(p.clock(&PortValues::empty(1)).get(0), Some(42));
        assert_eq!(counter.count(), 0);
    }

    #[test]
    fn mismatched_branches_are_recorded() {
        let counter = ViolationCounter::new();
        let mut p = JoinPearl::new("j", 2, 0, &counter);
        let mut ins = PortValues::empty(2);
        ins.set(0, 7);
        ins.set(1, 8);
        p.clock(&ins);
        let out = p.clock(&PortValues::empty(2));
        assert_eq!(out.get(0), Some(7), "output follows branch 0");
        assert_eq!(counter.count(), 1);
    }

    #[test]
    fn state_round_trips() {
        let counter = ViolationCounter::new();
        let mut p = JoinPearl::new("j", 2, 2, &counter);
        let mut ins = PortValues::empty(2);
        ins.set(0, 5);
        ins.set(1, 5);
        p.clock(&ins);
        let mut words = Vec::new();
        p.save_state(&mut words);
        let mut q = JoinPearl::new("j", 2, 2, &counter);
        q.load_state(&words);
        let mut a = Vec::new();
        let mut b = Vec::new();
        p.save_state(&mut a);
        q.save_state(&mut b);
        assert_eq!(a, b);
    }
}

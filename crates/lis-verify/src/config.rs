//! Closed wrapper configurations: SP shell + relay stations + an
//! adversary on every open edge, assembled for bounded exploration.
//!
//! A [`ClosedConfig`] owns a [`System`] whose only free inputs are the
//! per-edge stall masks of its adversaries. The *correct*
//! configurations run the gate-level SP shell 64 adversary branches at
//! a time through the packed netlist engine
//! ([`wrap_pearls_packed_full_netlist`]); the *mutant* configurations
//! run the behavioural wrapper single-lane with one seeded bug
//! ([`crate::mutants`]). Both expose the same interface to the
//! explorer: load/save per-lane state, set stall masks, step, and read
//! back the invariant probes (violation counters, the KPN ledger, the
//! void/data signal planes, delivered-token progress).

use crate::join::JoinPearl;
use crate::mutants::{EagerPolicy, MutantRelay, RelayBug};
use crate::reduce::{BranchSwap, EdgeGuard, ReductionPlan};
use lis_proto::{
    LisChannel, PackedLisChannel, PackedRelayStation, PackedSeqSink, PackedSeqSource, Pearl,
    RelayStation, SeqSink, SeqSource, StallControl, ViolationCounter,
};
use lis_sim::{SettleMode, System, LANES};
use lis_wrappers::{
    wrap_pearl, wrap_pearls_packed_full_netlist, SpPolicy, SyncPolicy, WrapperKind,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sequence-number modulus of every adversary stream. Must exceed any
/// configuration's token capacity so the conservation ledger
/// distinguishes "full pipeline" from "token duplicated" (a duplicate
/// makes the in-flight count wrap to near the modulus).
pub const MODULUS: u64 = 64;

/// The seeded fault a mutant configuration carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// A [`MutantRelay`] with the given bug, placed on the SP's output
    /// edge (closest to the adversary sink, so the trigger window is
    /// shallow).
    Relay(RelayBug),
    /// The [`EagerPolicy`] SP mutant: fires without sensing ports.
    Eager,
}

impl Mutant {
    /// Stable short name, used in config names and reports.
    pub fn name(self) -> &'static str {
        match self {
            Mutant::Relay(bug) => bug.name(),
            Mutant::Eager => "eager-sp",
        }
    }
}

/// One adversary-controlled edge: a named stall mask (bit *k* stalls
/// lane *k* for the next cycle).
struct Edge {
    name: String,
    mask: Arc<AtomicU64>,
}

/// One source→sink stream for the conservation ledger: component
/// indices of the adversary endpoints (their sequence counter is the
/// first word of their per-lane state blob) and the stream's physical
/// token capacity.
struct Stream {
    source: usize,
    sink: usize,
    capacity: u64,
}

/// A channel watched by the signalling-legality probe.
enum Probe {
    Scalar(LisChannel),
    Packed(PackedLisChannel),
}

/// Monotone delivered-token counters of the adversary sink.
enum Delivered {
    Scalar(Arc<AtomicU64>),
    Packed(Arc<Vec<AtomicU64>>),
}

/// A closed configuration ready for bounded exploration.
pub struct ClosedConfig {
    name: String,
    lanes: usize,
    system: System,
    edges: Vec<Edge>,
    lane_violations: Vec<ViolationCounter>,
    delivered: Delivered,
    streams: Vec<Stream>,
    probes: Vec<Probe>,
    initial: Vec<u64>,
    free_run_horizon: u64,
    plan: ReductionPlan,
}

impl ClosedConfig {
    /// The configuration's name (matches the replay registry of
    /// [`crate::counterexample::replay_on_soc`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of adversary branches one step expands (64 packed, 1
    /// scalar).
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of adversary-controlled edges (branching factor is
    /// `2^edge_count`).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The edge names, in stall-mask bit order.
    pub fn edge_names(&self) -> Vec<String> {
        self.edges.iter().map(|e| e.name.clone()).collect()
    }

    /// The power-up state, loadable into any lane.
    pub fn initial_state(&self) -> Vec<u64> {
        self.initial.clone()
    }

    /// Free-run cycles after which a state with no sink delivery is
    /// declared deadlocked.
    pub fn free_run_horizon(&self) -> u64 {
        self.free_run_horizon
    }

    /// The configuration's reduction plan — per-edge partial-order
    /// guards and the symmetry generator, both attached (and validated
    /// against the port graph) at build time. Cloned by the explorer
    /// into every parallel worker.
    pub fn reduction_plan(&self) -> ReductionPlan {
        self.plan.clone()
    }

    /// Injects `words` (a [`Self::save`] result) into lane `lane`.
    pub fn load(&mut self, lane: usize, words: &[u64]) {
        self.system.load_lane(lane, words);
    }

    /// Extracts lane `lane`'s dense state.
    pub fn save(&self, lane: usize) -> Vec<u64> {
        self.system.save_lane(lane)
    }

    /// Sets edge `edge`'s stall mask for the coming cycle.
    pub fn set_stall(&self, edge: usize, mask: u64) {
        self.edges[edge].mask.store(mask, Ordering::Relaxed);
    }

    /// Settles combinational signals (then inspect
    /// [`Self::signal_bad_mask`] before ticking).
    pub fn settle(&mut self) {
        self.system.settle().expect("closed config must converge");
    }

    /// Advances one clock cycle (settle is a no-op if already settled).
    pub fn step(&mut self) {
        self.system.step().expect("closed config must converge");
    }

    /// Lanes whose settled signals violate `void => data == 0` on any
    /// probed channel (bit *k* = lane *k*).
    pub fn signal_bad_mask(&self) -> u64 {
        let mut bad = 0u64;
        for probe in &self.probes {
            match probe {
                Probe::Scalar(ch) => {
                    if self.system.peek_bool(ch.void) && self.system.peek(ch.data) != 0 {
                        bad |= 1;
                    }
                }
                Probe::Packed(ch) => {
                    let void = self.system.peek(ch.void);
                    for &plane in &ch.data {
                        bad |= void & self.system.peek(plane);
                    }
                }
            }
        }
        bad
    }

    /// Cumulative component-recorded faults of lane `lane` (relay
    /// overflow, wrapper pop-empty/push-full, sink order faults, join
    /// mismatches — all share the lane's counter).
    pub fn violations(&self, lane: usize) -> u64 {
        self.lane_violations[lane].count()
    }

    /// Cumulative informative deliveries at the adversary sink of lane
    /// `lane` — the monotone progress signal.
    pub fn delivered(&self, lane: usize) -> u64 {
        match &self.delivered {
            Delivered::Scalar(d) => d.load(Ordering::Relaxed),
            Delivered::Packed(d) => d[lane].load(Ordering::Relaxed),
        }
    }

    /// Per-stream `(source seq, sink expect)` pairs extracted from a
    /// saved lane state — the KPN ledger's raw inputs.
    pub fn stream_state(&self, words: &[u64]) -> Vec<(u64, u64)> {
        self.streams
            .iter()
            .map(|s| {
                (
                    component_first_word(words, s.source),
                    component_first_word(words, s.sink),
                )
            })
            .collect()
    }

    /// Checks the conservation ledger on a saved lane state: for every
    /// stream, `(seq - expect) mod MODULUS` tokens are in flight, and
    /// that can never exceed the stream's physical capacity. Returns a
    /// description of the first violated stream.
    pub fn ledger_violation(&self, words: &[u64]) -> Option<String> {
        for (i, s) in self.streams.iter().enumerate() {
            let seq = component_first_word(words, s.source);
            let expect = component_first_word(words, s.sink);
            let in_flight = (seq + MODULUS - expect) % MODULUS;
            if in_flight > s.capacity {
                return Some(format!(
                    "stream {i}: {in_flight} tokens in flight exceeds capacity {} \
                     (source seq {seq}, sink expect {expect} mod {MODULUS})",
                    s.capacity
                ));
            }
        }
        None
    }
}

/// First word of component `comp_idx`'s blob in a length-prefixed lane
/// state (see [`System::save_lane`]).
fn component_first_word(words: &[u64], comp_idx: usize) -> u64 {
    let mut at = 0usize;
    for i in 0.. {
        let len = words[at] as usize;
        if i == comp_idx {
            assert!(len >= 1, "component {comp_idx} saved no state");
            return words[at + 1];
        }
        at += 1 + len;
    }
    unreachable!()
}

/// Token capacity of a path with `relays` relay stations: 2 places per
/// relay, 2 per wrapper port queue (in and out), the pearl itself and
/// its output register, plus 2 slack for the in-transit settle cycle.
fn path_capacity(relays: usize) -> u64 {
    2 * relays as u64 + 8
}

fn fresh_counters(n: usize) -> Vec<ViolationCounter> {
    (0..n).map(|_| ViolationCounter::new()).collect()
}

/// Validates one POR guard against the sealed port graph: the
/// adversary component's one-step cone of influence must be exactly the
/// guarded component. If any third component could observe the stall
/// choice, the inertness proof would not cover it, so the builder
/// panics rather than attach an unsound guard. Must run on the fully
/// assembled system (later components could add readers).
fn validated_guard(system: &System, adversary: usize, guard: EdgeGuard) -> EdgeGuard {
    if let Some(watched) = guard.watched_component() {
        let cone = system.influence_cone(adversary);
        assert_eq!(
            cone,
            vec![watched],
            "POR guard unsound: adversary component {adversary}'s cone of influence \
             must be exactly the watched component {watched}"
        );
    }
    guard
}

fn checker_system() -> System {
    let mut system = System::new();
    // Reference-grade settle: state injection marks everything dirty,
    // and these systems are small enough that blind sweeps win over
    // rebuilding scheduler activity state every step.
    system.set_settle_mode(SettleMode::FullSweep);
    system.set_threads(1);
    system
}

/// Builds the packed gate-level configuration `name`: adversary source
/// → `relays_before` relay stations → SP-wrapped identity pearl →
/// `relays_after` relay stations → adversary sink, 64 lanes wide.
pub fn packed_sp(name: &str, relays_before: usize, relays_after: usize) -> ClosedConfig {
    assert!(relays_before >= 1, "source must be decoupled by a relay");
    let mut system = checker_system();
    let lane_violations = fresh_counters(LANES);
    let pearls: Vec<Box<dyn Pearl>> = (0..LANES)
        .map(|k| Box::new(JoinPearl::new("join", 1, 1, &lane_violations[k])) as Box<dyn Pearl>)
        .collect();
    let schedule = pearls[0].schedule().clone();
    let controller = WrapperKind::Sp
        .generate_netlist(&schedule)
        .expect("SP controller for the join schedule");
    let (ins, outs) =
        wrap_pearls_packed_full_netlist(&mut system, "sp", pearls, controller, &lane_violations);

    let mut probes = vec![
        Probe::Packed(ins[0].clone()),
        Probe::Packed(outs[0].clone()),
    ];
    let src_ch = PackedLisChannel::new(&mut system, "adv_src", 32);
    probes.push(Probe::Packed(src_ch.clone()));
    let src_stall = Arc::new(AtomicU64::new(0));
    let source = system.component_count();
    system.add_component(PackedSeqSource::new(
        "src",
        src_ch.clone(),
        StallControl::External(Arc::clone(&src_stall)),
        MODULUS,
        u64::MAX,
    ));
    let mut cur = src_ch;
    let first_relay = system.component_count();
    for i in 0..relays_before {
        let next = if i + 1 == relays_before {
            ins[0].clone()
        } else {
            let ch = PackedLisChannel::new(&mut system, &format!("seg_in{i}"), 32);
            probes.push(Probe::Packed(ch.clone()));
            ch
        };
        system.add_component(PackedRelayStation::new(
            format!("rb{i}"),
            cur,
            next.clone(),
            lane_violations.clone(),
        ));
        cur = next;
    }
    let mut cur = outs[0].clone();
    let mut last_after_relay = None;
    for i in 0..relays_after {
        let next = PackedLisChannel::new(&mut system, &format!("seg_out{i}"), 32);
        probes.push(Probe::Packed(next.clone()));
        last_after_relay = Some(system.component_count());
        system.add_component(PackedRelayStation::new(
            format!("ra{i}"),
            cur,
            next.clone(),
            lane_violations.clone(),
        ));
        cur = next;
    }
    let sink_stall = Arc::new(AtomicU64::new(0));
    let sink = system.component_count();
    let snk = PackedSeqSink::new(
        "snk",
        cur,
        StallControl::External(Arc::clone(&sink_stall)),
        MODULUS,
        u64::MAX,
        &lane_violations,
    );
    let delivered = snk.delivered();
    system.add_component(snk);

    let relays = relays_before + relays_after;
    let guards = vec![
        validated_guard(
            &system,
            source,
            EdgeGuard::PackedRelayStopUp { comp: first_relay },
        ),
        match last_after_relay {
            Some(comp) => validated_guard(&system, sink, EdgeGuard::PackedRelayMainEmpty { comp }),
            // With no relay after the shell the sink talks straight to
            // the gate-level wrapper, whose netlist state we do not
            // inspect: no inertness proof.
            None => EdgeGuard::None,
        },
    ];
    let initial = system.save_lane(0);
    ClosedConfig {
        name: name.to_string(),
        lanes: LANES,
        system,
        edges: vec![
            Edge {
                name: "src".into(),
                mask: src_stall,
            },
            Edge {
                name: "sink".into(),
                mask: sink_stall,
            },
        ],
        lane_violations,
        delivered: Delivered::Packed(delivered),
        streams: vec![Stream {
            source,
            sink,
            capacity: path_capacity(relays),
        }],
        probes,
        initial,
        free_run_horizon: 64,
        plan: ReductionPlan {
            guards,
            symmetry: None,
        },
    }
}

/// Builds the packed join configuration: two adversary sources feeding
/// a 2-input SP-wrapped join pearl through relay chains of *different*
/// depth (1 and 2 stations — the latency skew the join must absorb),
/// one adversary sink. Three controlled edges, branching factor 8.
pub fn packed_spj(name: &str) -> ClosedConfig {
    let mut system = checker_system();
    let lane_violations = fresh_counters(LANES);
    let pearls: Vec<Box<dyn Pearl>> = (0..LANES)
        .map(|k| Box::new(JoinPearl::new("join", 2, 1, &lane_violations[k])) as Box<dyn Pearl>)
        .collect();
    let schedule = pearls[0].schedule().clone();
    let controller = WrapperKind::Sp
        .generate_netlist(&schedule)
        .expect("SP controller for the join schedule");
    let (ins, outs) =
        wrap_pearls_packed_full_netlist(&mut system, "spj", pearls, controller, &lane_violations);

    let mut probes = vec![Probe::Packed(outs[0].clone())];
    let mut edges = Vec::new();
    let mut guard_specs = Vec::new();
    let mut streams = Vec::new();
    for (branch, relays) in [1usize, 2].into_iter().enumerate() {
        let src_ch = PackedLisChannel::new(&mut system, &format!("adv_src{branch}"), 32);
        probes.push(Probe::Packed(src_ch.clone()));
        probes.push(Probe::Packed(ins[branch].clone()));
        let stall = Arc::new(AtomicU64::new(0));
        let source = system.component_count();
        system.add_component(PackedSeqSource::new(
            format!("src{branch}"),
            src_ch.clone(),
            StallControl::External(Arc::clone(&stall)),
            MODULUS,
            u64::MAX,
        ));
        edges.push(Edge {
            name: format!("src{branch}"),
            mask: stall,
        });
        let first_relay = system.component_count();
        guard_specs.push((source, EdgeGuard::PackedRelayStopUp { comp: first_relay }));
        let mut cur = src_ch;
        for i in 0..relays {
            let next = if i + 1 == relays {
                ins[branch].clone()
            } else {
                let ch = PackedLisChannel::new(&mut system, &format!("seg{branch}_{i}"), 32);
                probes.push(Probe::Packed(ch.clone()));
                ch
            };
            system.add_component(PackedRelayStation::new(
                format!("rb{branch}_{i}"),
                cur,
                next.clone(),
                lane_violations.clone(),
            ));
            cur = next;
        }
        streams.push((source, relays));
    }
    let sink_stall = Arc::new(AtomicU64::new(0));
    let sink = system.component_count();
    let snk = PackedSeqSink::new(
        "snk",
        outs[0].clone(),
        StallControl::External(Arc::clone(&sink_stall)),
        MODULUS,
        u64::MAX,
        &lane_violations,
    );
    let delivered = snk.delivered();
    system.add_component(snk);
    edges.push(Edge {
        name: "sink".into(),
        mask: sink_stall,
    });
    // The sink talks straight to the gate-level wrapper shell: no
    // inertness proof for its edge.
    guard_specs.push((sink, EdgeGuard::None));

    let guards = guard_specs
        .into_iter()
        .map(|(adversary, guard)| validated_guard(&system, adversary, guard))
        .collect();
    let initial = system.save_lane(0);
    ClosedConfig {
        name: name.to_string(),
        lanes: LANES,
        system,
        edges,
        lane_violations,
        delivered: Delivered::Packed(delivered),
        streams: streams
            .into_iter()
            .map(|(source, relays)| Stream {
                source,
                sink,
                capacity: path_capacity(relays),
            })
            .collect(),
        probes,
        initial,
        free_run_horizon: 64,
        plan: ReductionPlan {
            guards,
            symmetry: None,
        },
    }
}

/// Builds a scalar behavioural configuration: adversary source → one
/// relay station → behavioural SP wrapper around the identity pearl →
/// (optional mutant relay) → adversary sink, one lane. With
/// `mutant: None` this is the cycle-exact twin the
/// counterexample-replay SoCs and the BMC-vs-simulator cross-check are
/// built on; with a [`Mutant`] it carries exactly one seeded bug.
pub fn scalar_sp(name: &str, relays_after: usize, mutant: Option<Mutant>) -> ClosedConfig {
    let mut system = checker_system();
    let violations = ViolationCounter::new();
    let pearl = JoinPearl::new("join", 1, 1, &violations);
    let schedule = pearl.schedule().clone();
    let policy: Box<dyn SyncPolicy> = match mutant {
        Some(Mutant::Eager) => Box::new(EagerPolicy::new(schedule)),
        _ => Box::new(SpPolicy::from_schedule(&schedule)),
    };
    let wrapper = system.component_count();
    let (ins, outs, _stats) = wrap_pearl(&mut system, "sp", Box::new(pearl), policy, &violations);

    let mut probes = vec![Probe::Scalar(ins[0]), Probe::Scalar(outs[0])];
    let src_ch = LisChannel::new(&mut system, "adv_src", 32);
    probes.push(Probe::Scalar(src_ch));
    let src_stall = Arc::new(AtomicU64::new(0));
    let source = system.component_count();
    system.add_component(SeqSource::new(
        "src",
        src_ch,
        StallControl::External(Arc::clone(&src_stall)),
        MODULUS,
    ));
    // The drop-on-double-stall bug needs back-to-back sends into the
    // relay, which only the every-cycle adversary source produces (the
    // SP's output is throttled to one token per period): that mutant
    // replaces the input relay, the others sit on the output edge.
    let mutant_before = matches!(mutant, Some(Mutant::Relay(RelayBug::DropOnDoubleStall)));
    let in_relay = system.component_count();
    if mutant_before {
        system.add_component(MutantRelay::new(
            "mut",
            src_ch,
            ins[0],
            RelayBug::DropOnDoubleStall,
        ));
    } else {
        system.add_component(RelayStation::new("rb0", src_ch, ins[0], violations.clone()));
    }

    let mut cur = outs[0];
    let mut relays = 1;
    let mut last_after_relay = None;
    let mutant_after = matches!((mutant, mutant_before), (Some(Mutant::Relay(_)), false));
    if let (Some(Mutant::Relay(bug)), false) = (mutant, mutant_before) {
        let ch = LisChannel::new(&mut system, "adv_out", 32);
        probes.push(Probe::Scalar(ch));
        system.add_component(MutantRelay::new("mut", cur, ch, bug));
        cur = ch;
        relays += 1;
    } else {
        for i in 0..relays_after {
            let ch = LisChannel::new(&mut system, &format!("seg_out{i}"), 32);
            probes.push(Probe::Scalar(ch));
            last_after_relay = Some(system.component_count());
            system.add_component(RelayStation::new(
                format!("ra{i}"),
                cur,
                ch,
                violations.clone(),
            ));
            cur = ch;
            relays += 1;
        }
    }
    let sink_stall = Arc::new(AtomicU64::new(0));
    let sink = system.component_count();
    let snk = SeqSink::new(
        "snk",
        cur,
        StallControl::External(Arc::clone(&sink_stall)),
        MODULUS,
        &violations,
    );
    let delivered = snk.delivered();
    system.add_component(snk);

    // The source edge's inertness proof rests on the *correct* relay's
    // registered protocol, the sink edge's on either a correct output
    // relay or the behavioural wrapper's output queue. Any edge feeding
    // a mutant component gets no guard: a bug invalidates the proof,
    // and the mutants exist precisely to be caught.
    let guards = vec![
        if mutant_before {
            EdgeGuard::None
        } else {
            validated_guard(
                &system,
                source,
                EdgeGuard::ScalarRelayStopUp { comp: in_relay },
            )
        },
        if mutant_after {
            EdgeGuard::None
        } else if let Some(comp) = last_after_relay {
            validated_guard(&system, sink, EdgeGuard::ScalarRelayMainEmpty { comp })
        } else {
            validated_guard(
                &system,
                sink,
                EdgeGuard::WrapperOutEmpty {
                    comp: wrapper,
                    n_in: 1,
                },
            )
        },
    ];
    let initial = system.save_lane(0);
    ClosedConfig {
        name: name.to_string(),
        lanes: 1,
        system,
        edges: vec![
            Edge {
                name: "src".into(),
                mask: src_stall,
            },
            Edge {
                name: "sink".into(),
                mask: sink_stall,
            },
        ],
        lane_violations: vec![violations],
        delivered: Delivered::Scalar(delivered),
        streams: vec![Stream {
            source,
            sink,
            capacity: path_capacity(relays),
        }],
        probes,
        initial,
        free_run_horizon: 64,
        plan: ReductionPlan {
            guards,
            symmetry: None,
        },
    }
}

/// Builds the symmetric scalar join configuration: two *identical*
/// adversary branches — source → one relay station → the 2-input
/// behavioural SP wrapper around a join pearl — plus one adversary
/// sink. Because the branches are structurally interchangeable (same
/// relay depth, same stream capacity, and a join schedule that reads
/// both ports in the same step), the configuration carries a
/// [`BranchSwap`] symmetry folding mirror-image states into one orbit
/// representative, on top of POR guards on all three edges. The
/// power-up state is asserted to be a fixed point of the swap, so the
/// canonical orbit of the initial state is itself.
pub fn scalar_spj(name: &str) -> ClosedConfig {
    let mut system = checker_system();
    let violations = ViolationCounter::new();
    let wrapper = system.component_count();
    let pearl = JoinPearl::new("join", 2, 1, &violations);
    let schedule = pearl.schedule().clone();
    let (ins, outs, _stats) = wrap_pearl(
        &mut system,
        "spj",
        Box::new(pearl),
        Box::new(SpPolicy::from_schedule(&schedule)),
        &violations,
    );

    let mut probes = vec![
        Probe::Scalar(ins[0]),
        Probe::Scalar(ins[1]),
        Probe::Scalar(outs[0]),
    ];
    let mut edges = Vec::new();
    let mut guard_specs = Vec::new();
    let mut branch_comps = Vec::new();
    let mut streams = Vec::new();
    for (branch, &wrapper_in) in ins.iter().enumerate().take(2) {
        let src_ch = LisChannel::new(&mut system, &format!("adv_src{branch}"), 32);
        probes.push(Probe::Scalar(src_ch));
        let stall = Arc::new(AtomicU64::new(0));
        let source = system.component_count();
        system.add_component(SeqSource::new(
            format!("src{branch}"),
            src_ch,
            StallControl::External(Arc::clone(&stall)),
            MODULUS,
        ));
        let relay = system.component_count();
        system.add_component(RelayStation::new(
            format!("rb{branch}"),
            src_ch,
            wrapper_in,
            violations.clone(),
        ));
        edges.push(Edge {
            name: format!("src{branch}"),
            mask: stall,
        });
        guard_specs.push((source, EdgeGuard::ScalarRelayStopUp { comp: relay }));
        branch_comps.push((source, relay));
        streams.push(Stream {
            source,
            sink: usize::MAX, // patched below once the sink exists
            capacity: path_capacity(1),
        });
    }
    let sink_stall = Arc::new(AtomicU64::new(0));
    let sink = system.component_count();
    let snk = SeqSink::new(
        "snk",
        outs[0],
        StallControl::External(Arc::clone(&sink_stall)),
        MODULUS,
        &violations,
    );
    let delivered = snk.delivered();
    system.add_component(snk);
    edges.push(Edge {
        name: "sink".into(),
        mask: sink_stall,
    });
    guard_specs.push((
        sink,
        EdgeGuard::WrapperOutEmpty {
            comp: wrapper,
            n_in: 2,
        },
    ));
    for s in &mut streams {
        s.sink = sink;
    }

    let guards = guard_specs
        .into_iter()
        .map(|(adversary, guard)| validated_guard(&system, adversary, guard))
        .collect();
    let symmetry = BranchSwap {
        comp_swaps: vec![
            (branch_comps[0].0, branch_comps[1].0),
            (branch_comps[0].1, branch_comps[1].1),
        ],
        wrapper,
        n_in: 2,
        n_out: 1,
        ports: (0, 1),
    };
    let initial = system.save_lane(0);
    assert_eq!(
        symmetry.mirror(&initial),
        initial,
        "the power-up state must be a fixed point of the branch swap"
    );
    ClosedConfig {
        name: name.to_string(),
        lanes: 1,
        system,
        edges,
        lane_violations: vec![violations],
        delivered: Delivered::Scalar(delivered),
        streams,
        probes,
        initial,
        free_run_horizon: 64,
        plan: ReductionPlan {
            guards,
            symmetry: Some(symmetry),
        },
    }
}

/// Names of the correct configurations the checker must prove clean.
pub const CORRECT_CONFIGS: &[&str] = &["sp1", "sp2", "spj", "spj-sym", "sp1-scalar", "sp2-scalar"];

/// Names of the seeded-mutant configurations the checker must catch.
pub const MUTANT_CONFIGS: &[&str] = &["mut-drop", "mut-dup", "mut-stuck", "mut-eager"];

/// Builds a configuration by registry name (the name a
/// [`crate::Counterexample`] carries), or `None` if unknown.
///
/// * `sp1` / `sp2` — packed gate-level SP with 1 / 2 relay stations.
/// * `spj` — packed gate-level SP joining two branches of skewed relay
///   depth (1 and 2).
/// * `spj-sym` — behavioural join with two *identical* branches and a
///   branch-swap symmetry ([`scalar_spj`]).
/// * `sp1-scalar` / `sp2-scalar` — behavioural single-lane twins.
/// * `mut-drop` / `mut-dup` / `mut-stuck` — a [`MutantRelay`] on the
///   SP's output edge with the corresponding [`RelayBug`].
/// * `mut-eager` — the correct topology with the [`EagerPolicy`] SP.
pub fn build_config(name: &str) -> Option<ClosedConfig> {
    Some(match name {
        "sp1" => packed_sp("sp1", 1, 0),
        "sp2" => packed_sp("sp2", 1, 1),
        "spj" => packed_spj("spj"),
        "spj-sym" => scalar_spj("spj-sym"),
        "sp1-scalar" => scalar_sp("sp1-scalar", 0, None),
        "sp2-scalar" => scalar_sp("sp2-scalar", 1, None),
        "mut-drop" => scalar_sp(
            "mut-drop",
            0,
            Some(Mutant::Relay(RelayBug::DropOnDoubleStall)),
        ),
        "mut-dup" => scalar_sp(
            "mut-dup",
            0,
            Some(Mutant::Relay(RelayBug::DuplicateOnRestart)),
        ),
        "mut-stuck" => scalar_sp("mut-stuck", 0, Some(Mutant::Relay(RelayBug::StuckStop))),
        "mut-eager" => scalar_sp("mut-eager", 0, Some(Mutant::Eager)),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_named_config() {
        for name in CORRECT_CONFIGS.iter().chain(MUTANT_CONFIGS) {
            let cfg = build_config(name).expect("registered config builds");
            assert_eq!(cfg.name(), *name);
        }
        assert!(build_config("nope").is_none());
    }

    #[test]
    fn scalar_config_streams_cleanly_when_unstalled() {
        let mut cfg = scalar_sp("sp1-scalar", 0, None);
        assert_eq!(cfg.lanes(), 1);
        let init = cfg.initial_state();
        cfg.load(0, &init);
        for _ in 0..40 {
            cfg.settle();
            assert_eq!(cfg.signal_bad_mask() & 1, 0);
            cfg.step();
            let words = cfg.save(0);
            assert_eq!(cfg.ledger_violation(&words), None);
        }
        assert_eq!(cfg.violations(0), 0);
        assert!(cfg.delivered(0) > 5, "tokens must flow end to end");
    }

    #[test]
    fn packed_config_streams_cleanly_on_every_lane() {
        let mut cfg = packed_sp("sp1", 1, 0);
        assert_eq!(cfg.lanes(), 64);
        for _ in 0..40 {
            cfg.settle();
            assert_eq!(cfg.signal_bad_mask(), 0);
            cfg.step();
        }
        for lane in 0..64 {
            assert_eq!(cfg.violations(lane), 0, "lane {lane}");
            assert!(cfg.delivered(lane) > 5, "lane {lane} must progress");
            let words = cfg.save(lane);
            assert_eq!(cfg.ledger_violation(&words), None, "lane {lane}");
        }
    }

    #[test]
    fn stall_masks_hold_individual_lanes() {
        let mut cfg = packed_sp("sp1", 1, 0);
        // Lane 0's source is stalled forever; lane 1 runs free.
        cfg.set_stall(0, 0b01);
        for _ in 0..30 {
            cfg.step();
        }
        assert_eq!(cfg.delivered(0), 0, "stalled source never feeds the sink");
        assert!(cfg.delivered(1) > 3);
        let w0 = cfg.save(0);
        assert_eq!(cfg.stream_state(&w0)[0], (0, 0), "lane 0 never moved");
    }

    #[test]
    fn ledger_flags_impossible_in_flight_counts() {
        let cfg = scalar_sp("sp1-scalar", 0, None);
        let mut words = cfg.initial_state();
        // Forge a sink that claims more deliveries than sends: the
        // in-flight count wraps to MODULUS - 3 > capacity.
        let streams = cfg.stream_state(&words);
        assert_eq!(streams[0], (0, 0));
        // Patch the sink expect in place (first word of its blob).
        let sink_word = patch_component_first_word(&mut words, cfg.streams[0].sink, 3);
        assert!(sink_word, "sink blob located");
        assert!(cfg
            .ledger_violation(&words)
            .expect("forged state must violate conservation")
            .contains("in flight"));
    }

    fn patch_component_first_word(words: &mut [u64], comp_idx: usize, value: u64) -> bool {
        let mut at = 0usize;
        for i in 0.. {
            let len = words[at] as usize;
            if i == comp_idx {
                words[at + 1] = value;
                return true;
            }
            at += 1 + len;
            if at >= words.len() {
                return false;
            }
        }
        false
    }
}

//! Concrete counterexamples: serializable stall schedules, and their
//! replay through the ordinary [`lis_core::Soc`] simulator.
//!
//! A counterexample found by the explorer is not trusted on its own: it
//! is serialized to JSON, committed under
//! `crates/lis-verify/tests/counterexamples/`, and replayed through a
//! SoC built from the *same* components the rest of the workspace uses
//! ([`lis_core::SocBuilder`]). The replay must reproduce the violation
//! on the seeded-mutant SoC and pass cleanly on the fixed one — the
//! regression loop that keeps checker and simulator honest about the
//! same protocol.

use crate::config::{Mutant, MODULUS};
use crate::join::JoinPearl;
use crate::mutants::{EagerPolicy, MutantRelay, RelayBug};
use lis_core::{Soc, SocBuilder};
use lis_proto::{Pearl, StallControl};
use lis_wrappers::{SpPolicy, SyncPolicy};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A concrete protocol violation: the adversary stall schedule that
/// drives a named closed configuration from power-up into the fault.
///
/// `schedule[c]` is the stall mask of cycle `c`; bit *e* stalls the
/// edge named `edges[e]`. For deadlock counterexamples `free_run` is
/// the stall-free horizon after the schedule within which the sink saw
/// no delivery.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Closed-configuration name (see [`crate::config::build_config`]).
    pub config: String,
    /// Violated invariant: `"sequencing"`, `"conservation"`,
    /// `"signalling"`, or `"deadlock"`.
    pub kind: String,
    /// Edge names, in stall-mask bit order.
    pub edges: Vec<String>,
    /// Per-cycle stall masks, from reset.
    pub schedule: Vec<u64>,
    /// Stall-free cycles appended for deadlock detection (0 otherwise).
    pub free_run: u64,
    /// Human-readable description of the observed fault.
    pub detail: String,
}

impl Counterexample {
    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("counterexample serializes")
    }

    /// Parses a counterexample back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying parse error message.
    pub fn from_json(json: &str) -> Result<Self, String> {
        serde_json::from_str(json).map_err(|e| format!("{e:?}"))
    }

    /// The per-edge scripted stall schedule: element `e` is the script
    /// for edge `e`, one mask word per cycle with only bit 0 used (the
    /// scalar replay lane).
    pub fn edge_scripts(&self) -> Vec<Vec<u64>> {
        (0..self.edges.len())
            .map(|e| self.schedule.iter().map(|m| (m >> e) & 1).collect())
            .collect()
    }
}

/// Outcome of replaying a counterexample through a [`Soc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayVerdict {
    /// Protocol violations recorded anywhere in the SoC by the end of
    /// the replay (order faults, relay overflow, wrapper faults).
    pub violations: u64,
    /// Tokens the adversary sink had received when the scripted
    /// schedule ran out.
    pub delivered_after_schedule: u64,
    /// Tokens received after one stall-free drain window.
    pub delivered_after_drain: u64,
    /// Whether a *second* stall-free window still made progress — the
    /// liveness signal (false = the pipeline is wedged: deadlock).
    pub progressed: bool,
}

impl ReplayVerdict {
    /// Whether the replay reproduced the counterexample's verdict.
    pub fn reproduces(&self, kind: &str) -> bool {
        match kind {
            "deadlock" => !self.progressed,
            _ => self.violations > 0,
        }
    }

    /// Whether the replay was fully clean: no violations and live.
    pub fn clean(&self) -> bool {
        self.violations == 0 && self.progressed
    }
}

/// The topology of a replay SoC, derived from a configuration name.
struct Shape {
    /// Relay count on each source branch.
    branches: Vec<usize>,
    /// Correct relay stations after the wrapper.
    relays_after: usize,
    /// The seeded bug, if any.
    mutant: Option<Mutant>,
    /// Whether a relay mutant replaces the input relay instead of
    /// sitting on the output edge (mirrors
    /// [`crate::config::scalar_sp`]: the drop bug needs the
    /// every-cycle source as its upstream).
    mutant_before: bool,
}

fn shape_of(config: &str) -> Option<Shape> {
    let shape = |branches: Vec<usize>, relays_after, mutant| Shape {
        branches,
        relays_after,
        mutant,
        mutant_before: matches!(mutant, Some(Mutant::Relay(RelayBug::DropOnDoubleStall))),
    };
    Some(match config {
        "sp1" | "sp1-scalar" => shape(vec![1], 0, None),
        "sp2" | "sp2-scalar" => shape(vec![1], 1, None),
        "spj" => shape(vec![1, 2], 0, None),
        "spj-sym" => shape(vec![1, 1], 0, None),
        "mut-drop" => shape(vec![1], 0, Some(Mutant::Relay(RelayBug::DropOnDoubleStall))),
        "mut-dup" => shape(
            vec![1],
            0,
            Some(Mutant::Relay(RelayBug::DuplicateOnRestart)),
        ),
        "mut-stuck" => shape(vec![1], 0, Some(Mutant::Relay(RelayBug::StuckStop))),
        "mut-eager" => shape(vec![1], 0, Some(Mutant::Eager)),
        _ => return None,
    })
}

/// Replays `cx` through an ordinary [`Soc`] built with
/// [`SocBuilder`] from the same protocol components the rest of the
/// workspace simulates with.
///
/// With `seeded == true` the SoC carries the configuration's mutant
/// (only meaningful for `mut-*` configurations); with `false` it is the
/// correct system of the same shape — the "fixed code" side of the
/// regression, on which every committed counterexample must pass
/// cleanly.
///
/// # Panics
///
/// Panics if the configuration name is unknown or the edge list does
/// not match the shape (sources first, sink last).
pub fn replay_on_soc(cx: &Counterexample, seeded: bool) -> ReplayVerdict {
    let mut shape = shape_of(&cx.config)
        .unwrap_or_else(|| panic!("unknown counterexample config {:?}", cx.config));
    if !seeded {
        shape.mutant = None;
    }
    assert_eq!(
        cx.edges.len(),
        shape.branches.len() + 1,
        "edge list must be sources then sink"
    );
    let scripts = cx.edge_scripts();

    let mut b = SocBuilder::new();
    b.set_threads(1);
    let vio = b.violations_handle();
    let pearl = JoinPearl::new("join", shape.branches.len(), 1, &vio);
    let policy: Box<dyn SyncPolicy> = match shape.mutant {
        Some(Mutant::Eager) => Box::new(EagerPolicy::new(pearl.schedule().clone())),
        _ => Box::new(SpPolicy::from_schedule(pearl.schedule())),
    };
    let ip = b.add_ip_with_policy("sp", Box::new(pearl), policy);

    for (branch, (&relays, script)) in shape.branches.iter().zip(&scripts).enumerate() {
        let stage = b.channel(&format!("adv_src{branch}"), 32);
        b.adversary_feed(
            format!("src{branch}"),
            stage,
            StallControl::Scripted(script.clone()),
            MODULUS,
        );
        if branch == 0 && shape.mutant_before {
            if let Some(Mutant::Relay(bug)) = shape.mutant {
                b.system_mut()
                    .add_component(MutantRelay::new("mut", stage, ip.inputs[0], bug));
                continue;
            }
        }
        b.link(stage, ip.inputs[branch], relays);
    }

    let mut tail = ip.outputs[0];
    if let (Some(Mutant::Relay(bug)), false) = (shape.mutant, shape.mutant_before) {
        let out = b.channel("adv_out", 32);
        b.system_mut()
            .add_component(MutantRelay::new("mut", tail, out, bug));
        tail = out;
    } else if shape.relays_after > 0 {
        let out = b.channel("adv_out", 32);
        b.link(tail, out, shape.relays_after);
        tail = out;
    }
    let delivered = b.adversary_capture(
        "snk",
        tail,
        StallControl::Scripted(scripts[shape.branches.len()].clone()),
        MODULUS,
    );
    let soc = b.build();
    run_verdict(soc, delivered, cx)
}

fn run_verdict(mut soc: Soc, delivered: Arc<AtomicU64>, cx: &Counterexample) -> ReplayVerdict {
    let drain = cx.free_run.max(64);
    soc.run(cx.schedule.len() as u64)
        .expect("replay SoC must converge");
    let delivered_after_schedule = delivered.load(Ordering::Relaxed);
    soc.run(drain).expect("replay SoC must converge");
    let delivered_after_drain = delivered.load(Ordering::Relaxed);
    soc.run(drain).expect("replay SoC must converge");
    ReplayVerdict {
        violations: soc.violations(),
        delivered_after_schedule,
        delivered_after_drain,
        progressed: delivered.load(Ordering::Relaxed) > delivered_after_drain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Counterexample {
        Counterexample {
            config: "sp1".into(),
            kind: "sequencing".into(),
            edges: vec!["src".into(), "sink".into()],
            schedule: vec![0, 2, 3, 1],
            free_run: 0,
            detail: "sample".into(),
        }
    }

    #[test]
    fn counterexample_round_trips_through_json() {
        let cx = sample();
        let back = Counterexample::from_json(&cx.to_json()).unwrap();
        assert_eq!(back, cx);
    }

    #[test]
    fn edge_scripts_split_the_mask_bits() {
        let cx = sample();
        let scripts = cx.edge_scripts();
        assert_eq!(scripts[0], vec![0, 0, 1, 1], "src stalls = bit 0");
        assert_eq!(scripts[1], vec![0, 1, 1, 0], "sink stalls = bit 1");
    }

    #[test]
    fn correct_soc_replays_any_schedule_cleanly() {
        // Latency insensitivity in one line: whatever the adversary
        // schedule, the correct SoC neither misorders nor wedges.
        let cx = Counterexample {
            config: "sp2".into(),
            kind: "sequencing".into(),
            edges: vec!["src".into(), "sink".into()],
            schedule: vec![3, 1, 2, 3, 2, 1, 0, 3, 3, 1, 2, 2],
            free_run: 0,
            detail: "clean replay".into(),
        };
        let verdict = replay_on_soc(&cx, false);
        assert!(verdict.clean(), "{verdict:?}");
    }

    #[test]
    fn join_soc_replays_cleanly_across_branch_skew() {
        let cx = Counterexample {
            config: "spj".into(),
            kind: "sequencing".into(),
            edges: vec!["src0".into(), "src1".into(), "sink".into()],
            schedule: vec![1, 2, 4, 7, 5, 3, 6, 0, 1, 2],
            free_run: 0,
            detail: "clean join replay".into(),
        };
        let verdict = replay_on_soc(&cx, false);
        assert!(verdict.clean(), "{verdict:?}");
    }
}

//! State-space reductions for the bounded explorer: partial-order
//! reduction over provably inert stall choices, and symmetry reduction
//! over interchangeable source branches.
//!
//! Both reductions operate on the dense lane-state blobs produced by
//! [`lis_sim::System::save_lane`] — a length-prefixed component-blob
//! list — and are *plans*: plain data a [`crate::ClosedConfig`] builder
//! attaches at construction time, cheap to clone into every parallel
//! exploration worker, and evaluated without touching the simulated
//! system.
//!
//! # Partial-order reduction (inert-stall pruning)
//!
//! In the synchronous closed configurations every adversary edge acts
//! every cycle, so the classical interleaving notion of commutation
//! does not apply directly. What does apply is a stronger, per-state
//! form: a stall choice on edge *e* is **inert** in state *s* when the
//! two successor states (stall vs. flow on *e*, everything else fixed)
//! are provably identical *and* observe identical invariant probes.
//! Then the `2^k` choices that differ only in inert bits form one
//! commuting class — all `k`-bit interleavings of the inert decisions
//! lead to the same place — and the explorer expands exactly one
//! representative (inert bits held at "flow"). Unlike classical POR
//! this pruning is census-preserving: the reachable state set, the
//! verdicts, and every counterexample are bit-identical to the
//! unreduced exploration; only `transitions`/`dedup_hits` shrink.
//!
//! Each [`EdgeGuard`] encodes one such proof, justified by the
//! component's registered-protocol semantics and validated at build
//! time against the one-step cone of influence the scheduler seals
//! ([`lis_sim::System::influence_cone`]): the guard is only sound if
//! the adversary's writes are observed by exactly the guarded
//! component.
//!
//! # Symmetry reduction
//!
//! A configuration with two structurally identical source branches
//! (same adversary, same relay depth, same stream capacity, feeding a
//! join pearl that reads both ports in the same schedule step) admits
//! an involution *g* on lane states: swap the branch-local component
//! blobs and the wrapper's per-port sub-state ([`BranchSwap`]). The
//! explorer hashes the lexicographic minimum of `{s, g(s)}` — the
//! canonical orbit representative — so mirror-image states collapse,
//! while the frontier keeps *concrete* states: counterexample
//! schedules replay unchanged, with no relabeling pass.

use crate::config::ClosedConfig;
use lis_sim::hash_words128;
use lis_wrappers::swap_patient_inputs;

/// A per-edge partial-order-reduction guard: the registered condition
/// under which the edge's stall choice provably cannot affect the
/// coming transition. Word offsets below index into the guarded
/// component's `save_state`/`save_lane_state` blob.
#[derive(Debug, Clone)]
pub enum EdgeGuard {
    /// No inertness proof for this edge.
    None,
    /// Source edge whose only one-step reader is the correct scalar
    /// relay station at component `comp`. While the relay's registered
    /// `stop_up` (blob word 4) is raised, the relay ignores the
    /// upstream token and the source — which samples the registered
    /// stop — holds its sequence either way; stalled sources present
    /// `Void` with zeroed data, so the signalling probe is clean in
    /// both branches.
    ScalarRelayStopUp {
        /// Component index of the relay station.
        comp: usize,
    },
    /// Sink edge fed by the correct scalar relay station at `comp`.
    /// While the relay's main register (blob word 0) is empty it
    /// presents `Void`, so the sink can neither consume nor misorder,
    /// and the relay's own step ignores the stall when there is
    /// nothing to pop.
    ScalarRelayMainEmpty {
        /// Component index of the relay station.
        comp: usize,
    },
    /// Packed twin of [`EdgeGuard::ScalarRelayStopUp`]: the relay's
    /// lane blob packs `main`/`aux` presence and `stop_up` into word 0
    /// (bits 0, 1, 2).
    PackedRelayStopUp {
        /// Component index of the packed relay station.
        comp: usize,
    },
    /// Packed twin of [`EdgeGuard::ScalarRelayMainEmpty`] (word 0
    /// bit 0 = main presence).
    PackedRelayMainEmpty {
        /// Component index of the packed relay station.
        comp: usize,
    },
    /// Sink edge fed by the behavioural wrapper at `comp`. While the
    /// wrapper's first output queue is empty it presents `Void`, the
    /// queue-pop step is a no-op regardless of the sink's stop, and
    /// pearl firing and input delivery never read the output stop.
    WrapperOutEmpty {
        /// Component index of the [`lis_wrappers::PatientProcess`].
        comp: usize,
        /// The wrapper's input-port count (needed to locate the first
        /// output queue in its variable-length blob).
        n_in: usize,
    },
}

impl EdgeGuard {
    /// The component whose registered state the guard inspects, or
    /// `None` for [`EdgeGuard::None`].
    pub fn watched_component(&self) -> Option<usize> {
        match *self {
            EdgeGuard::None => None,
            EdgeGuard::ScalarRelayStopUp { comp }
            | EdgeGuard::ScalarRelayMainEmpty { comp }
            | EdgeGuard::PackedRelayStopUp { comp }
            | EdgeGuard::PackedRelayMainEmpty { comp }
            | EdgeGuard::WrapperOutEmpty { comp, .. } => Some(comp),
        }
    }

    /// Whether the guard holds (the edge is inert) in the lane state
    /// `words`, given the pre-computed component blob offsets.
    fn holds(&self, words: &[u64], offsets: &[usize]) -> bool {
        // A component's blob starts one word past its length prefix.
        let blob = |comp: usize| &words[offsets[comp] + 1..];
        match *self {
            EdgeGuard::None => false,
            EdgeGuard::ScalarRelayStopUp { comp } => blob(comp)[4] != 0,
            EdgeGuard::ScalarRelayMainEmpty { comp } => blob(comp)[0] == 0,
            EdgeGuard::PackedRelayStopUp { comp } => blob(comp)[0] & 0b100 != 0,
            EdgeGuard::PackedRelayMainEmpty { comp } => blob(comp)[0] & 0b001 == 0,
            EdgeGuard::WrapperOutEmpty { comp, n_in } => {
                // Wrapper blob: sched_step, then n_in length-prefixed
                // input queues, then the first output queue's length.
                let b = blob(comp);
                let mut at = 1usize;
                for _ in 0..n_in {
                    at += 1 + b[at] as usize;
                }
                b[at] == 0
            }
        }
    }
}

/// The symmetry generator of a configuration with two interchangeable
/// source branches: an involution on saved lane states built from
/// whole-blob component swaps plus a port-level splice of the shared
/// wrapper ([`swap_patient_inputs`]) and its join pearl's held values.
#[derive(Debug, Clone)]
pub struct BranchSwap {
    /// Component index pairs whose blobs swap wholesale (the two
    /// adversary sources, the two relay stations, pairwise).
    pub comp_swaps: Vec<(usize, usize)>,
    /// Component index of the behavioural wrapper whose input ports
    /// swap.
    pub wrapper: usize,
    /// The wrapper's input-port count.
    pub n_in: usize,
    /// The wrapper's output-port count.
    pub n_out: usize,
    /// The two input ports that exchange roles.
    pub ports: (usize, usize),
}

impl BranchSwap {
    /// Applies the involution to a saved lane state (computing the
    /// component offsets itself), returning the mirrored state.
    pub fn mirror(&self, words: &[u64]) -> Vec<u64> {
        self.apply(words, &component_offsets(words))
    }

    /// Applies the involution given pre-computed component offsets.
    fn apply(&self, words: &[u64], offsets: &[usize]) -> Vec<u64> {
        let n_comps = offsets.len();
        let end = |c: usize| {
            if c + 1 < n_comps {
                offsets[c + 1]
            } else {
                words.len()
            }
        };
        let mut target: Vec<usize> = (0..n_comps).collect();
        for &(i, j) in &self.comp_swaps {
            target.swap(i, j);
        }
        let mut out = Vec::with_capacity(words.len());
        for c in 0..n_comps {
            let src = target[c];
            if c == self.wrapper {
                let (a, b) = self.ports;
                let blob = &words[offsets[c] + 1..end(c)];
                let spliced = swap_patient_inputs(blob, self.n_in, self.n_out, a, b, |pearl| {
                    // JoinPearl blob: [step, n_held, held...]; the held
                    // values are per-input-port and follow the swap.
                    pearl.swap(2 + a, 2 + b);
                });
                out.push(spliced.len() as u64);
                out.extend_from_slice(&spliced);
            } else {
                out.extend_from_slice(&words[offsets[src]..end(src)]);
            }
        }
        out
    }
}

/// The reduction plan of a closed configuration: everything the
/// explorer needs to prune and canonicalize, detached from the
/// simulated system so parallel workers and the merge thread can share
/// it freely.
#[derive(Debug, Clone, Default)]
pub struct ReductionPlan {
    /// One guard per adversary edge, in stall-mask bit order (empty
    /// when the configuration declares no POR guards).
    pub guards: Vec<EdgeGuard>,
    /// The symmetry generator, if the configuration has one.
    pub symmetry: Option<BranchSwap>,
}

impl ReductionPlan {
    /// Extracts the reduction plan of `cfg`, with either reduction
    /// switched off on request (the unreduced-reference mode of the
    /// equivalence tests).
    pub fn of(cfg: &ClosedConfig, por: bool, symmetry: bool) -> ReductionPlan {
        let mut plan = cfg.reduction_plan();
        if !por {
            plan.guards.clear();
        }
        if !symmetry {
            plan.symmetry = None;
        }
        plan
    }

    /// The stall-mask bit set of edges provably inert in `words`: bit
    /// *e* is set when edge *e*'s guard holds, i.e. both of its stall
    /// choices lead to the identical successor. The explorer expands
    /// only choices whose inert bits are all zero.
    pub fn inert_mask(&self, words: &[u64]) -> u64 {
        if self.guards.iter().all(|g| matches!(g, EdgeGuard::None)) {
            return 0;
        }
        let offsets = component_offsets(words);
        let mut mask = 0u64;
        for (e, guard) in self.guards.iter().enumerate() {
            if guard.holds(words, &offsets) {
                mask |= 1 << e;
            }
        }
        mask
    }

    /// The dedup fingerprint of `words` under the plan's symmetry: the
    /// 128-bit hash of the lexicographically smaller of the state and
    /// its mirror (exact orbit canonicalization for a single
    /// involution). The second component reports whether the mirror
    /// won, i.e. the state was *not* its own canonical representative.
    pub fn canonical_key(&self, words: &[u64]) -> (u128, bool) {
        match &self.symmetry {
            None => (hash_words128(words), false),
            Some(sym) => {
                let offsets = component_offsets(words);
                let mirror = sym.apply(words, &offsets);
                if mirror.as_slice() < words {
                    (hash_words128(&mirror), true)
                } else {
                    (hash_words128(words), false)
                }
            }
        }
    }
}

/// Start offset (of the length prefix) of every component blob in a
/// length-prefixed lane state (see [`lis_sim::System::save_lane`]).
fn component_offsets(words: &[u64]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut at = 0usize;
    while at < words.len() {
        offsets.push(at);
        at += 1 + words[at] as usize;
    }
    assert_eq!(at, words.len(), "malformed length-prefixed lane state");
    offsets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_offsets_walk_length_prefixes() {
        // Blobs: [2: a b] [0:] [1: c]
        let words = [2, 10, 11, 0, 1, 12];
        assert_eq!(component_offsets(&words), vec![0, 3, 4]);
    }

    #[test]
    fn scalar_relay_guards_read_the_documented_words() {
        // One component: a scalar relay blob
        // [main_p, main_v, aux_p, aux_v, stop_up].
        let state = |main_p: u64, stop_up: u64| vec![5, main_p, 7, 0, 0, stop_up];
        let plan = ReductionPlan {
            guards: vec![
                EdgeGuard::ScalarRelayStopUp { comp: 0 },
                EdgeGuard::ScalarRelayMainEmpty { comp: 0 },
            ],
            symmetry: None,
        };
        assert_eq!(plan.inert_mask(&state(1, 0)), 0b00);
        assert_eq!(plan.inert_mask(&state(1, 1)), 0b01);
        assert_eq!(plan.inert_mask(&state(0, 0)), 0b10);
        assert_eq!(plan.inert_mask(&state(0, 1)), 0b11);
    }

    #[test]
    fn canonical_key_folds_mirrors_and_fixes_palindromes() {
        // Two single-word components that swap; no wrapper involved —
        // point the wrapper at a third, empty-swap component.
        let sym = BranchSwap {
            comp_swaps: vec![(0, 1)],
            wrapper: 2,
            n_in: 1,
            n_out: 1,
            ports: (0, 0),
        };
        // Wrapper blob for n_in=1/n_out=1: step, in_q len, out_q len,
        // stop, policy len, pearl [step, n_held, held0].
        let wrapper = [7u64, 0, 0, 0, 0, 0, 1, 9];
        let mk = |a: u64, b: u64| {
            let mut v = vec![1, a, 1, b, wrapper.len() as u64];
            v.extend_from_slice(&wrapper);
            v
        };
        let plan = ReductionPlan {
            guards: Vec::new(),
            symmetry: Some(sym),
        };
        let (k_ab, ab_folded) = plan.canonical_key(&mk(3, 5));
        let (k_ba, ba_folded) = plan.canonical_key(&mk(5, 3));
        assert_eq!(k_ab, k_ba, "mirror states share one canonical key");
        assert_ne!(ab_folded, ba_folded, "exactly one of the pair folds");
        let (_, fixed) = plan.canonical_key(&mk(4, 4));
        assert!(!fixed, "a palindrome is its own representative");
    }
}

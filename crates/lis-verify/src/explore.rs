//! The bounded reachability explorer.
//!
//! From a [`ClosedConfig`]'s power-up state, the explorer walks the
//! tree of adversary decisions breadth-first: each cycle every
//! controlled edge independently stalls or flows, so a state has
//! `2^edges` successors. Three mechanisms keep the walk tractable:
//!
//! * **Deduplication** — states are fingerprinted by a 128-bit hash of
//!   their dense lane snapshot ([`lis_sim::hash_words128`]), which
//!   collapses the exponential decision tree into the reachable state
//!   graph. On a packed configuration the 64 SIMD lanes of the
//!   underlying engine expand 64 pending `(state, choice)` jobs per
//!   settle/tick pass.
//! * **Reduction** — the configuration's [`ReductionPlan`] prunes
//!   stall choices that are provably inert in the current state
//!   (census-preserving partial-order reduction) and hashes the
//!   canonical orbit representative under the configuration's branch
//!   symmetry, if it has one ([`crate::reduce`]).
//! * **Parallel frontier expansion** — [`explore_pool`] shards each
//!   BFS level across configuration *twins* driven by a
//!   [`WorkStealingPool`] worker each. Jobs are batched exactly as in
//!   the single-threaded walk and merged single-threaded in job order,
//!   so census, verdicts, and counterexamples are bit-identical at any
//!   worker count.
//!
//! Every transition is checked against three safety invariants —
//! sequencing (the sink's order counter), conservation (the KPN ledger
//! `(source seq − sink expect) mod 64 ≤ capacity`), signalling
//! legality (`void ⇒ data == 0` on every probed channel at the settled
//! cycle) — and every *new* state against one liveness invariant:
//! some stall-free continuation must deliver a token within the
//! config's free-run horizon (deadlock freedom). A violation becomes a
//! [`Counterexample`], greedily minimized by clearing stall bits that
//! are not needed to reproduce it.

use crate::config::ClosedConfig;
use crate::counterexample::Counterexample;
use crate::reduce::ReductionPlan;
use lis_sim::WorkStealingPool;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::sync::Mutex;

/// Cap on fully recorded counterexamples per report (the total count
/// keeps counting past it — a mutant config can violate on a large
/// fraction of its transitions).
const MAX_RECORDED: usize = 8;

/// Explorer knobs.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Adversary-decision depth bound (cycles from reset).
    pub depth: u32,
    /// Stop at the first violation instead of completing the depth
    /// (the mutant-catching mode).
    pub stop_at_first_violation: bool,
    /// Hard cap on discovered states; exploration is marked truncated
    /// beyond it.
    pub max_states: u64,
    /// Greedily minimize recorded counterexamples.
    pub minimize: bool,
    /// Apply the configuration's partial-order guards (census- and
    /// counterexample-preserving; off = unreduced reference mode).
    pub por: bool,
    /// Fold states through the configuration's branch symmetry before
    /// dedup (verdict-preserving; off = unreduced reference mode).
    pub symmetry: bool,
    /// Memory guard: cap, in 64-bit words, on the retained exploration
    /// arena (frontier, liveness queue, dedup set, back-pointers). An
    /// exploration that outgrows it panics loudly with the depth
    /// reached instead of getting OOM-killed. Default 2^28 words
    /// (2 GiB).
    pub max_retained_words: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            depth: 12,
            stop_at_first_violation: false,
            max_states: 2_000_000,
            minimize: true,
            por: true,
            symmetry: true,
            max_retained_words: 1 << 28,
        }
    }
}

/// What a bounded exploration saw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Configuration name.
    pub config: String,
    /// Depth bound the run used.
    pub depth: u32,
    /// Controlled edges, stall-mask bit order.
    pub edges: Vec<String>,
    /// Unique states discovered (including the initial state).
    pub states: u64,
    /// Transitions executed (`state × choice` expansions).
    pub transitions: u64,
    /// Transitions that landed on an already-known state.
    pub dedup_hits: u64,
    /// Transitions skipped because a partial-order guard proved the
    /// stall choice inert. For a clean run, the unreduced walk of the
    /// same census executes exactly `transitions + por_pruned`
    /// transitions.
    pub por_pruned: u64,
    /// Executed transitions whose successor was folded through the
    /// branch symmetry to its mirror-image orbit representative.
    pub sym_folds: u64,
    /// States liveness-checked against the free-run horizon.
    pub deadlock_checks: u64,
    /// Total violating transitions/states observed.
    pub total_violations: u64,
    /// Whether the state cap truncated the search.
    pub truncated: bool,
    /// Recorded (and optionally minimized) counterexamples, capped at
    /// `MAX_RECORDED` (the total count keeps counting past the cap).
    pub counterexamples: Vec<Counterexample>,
}

/// Back-pointer record: how state `i` was first reached.
struct Rec {
    parent: u32,
    choice: u8,
}

/// One executed `(state, choice)` expansion, as handed back by a
/// worker for the deterministic merge.
struct JobOut {
    parent: u32,
    choice: u8,
    fault: Option<(&'static str, String)>,
    words: Vec<u64>,
    key: u128,
    folded: bool,
}

/// Reconstructs the root→`id` choice schedule from the back-pointers.
fn schedule_to(recs: &[Rec], mut id: u32) -> Vec<u64> {
    let mut rev = Vec::new();
    while id != 0 {
        rev.push(u64::from(recs[id as usize].choice));
        id = recs[id as usize].parent;
    }
    rev.reverse();
    rev
}

/// Lanes `chunk_len..lanes` as a stall mask (idle lanes of a partially
/// filled batch are frozen by stalling every edge).
fn idle_mask(chunk_len: usize) -> u64 {
    if chunk_len >= 64 {
        0
    } else {
        !0u64 << chunk_len
    }
}

/// Runs the bounded exploration of `cfg` single-threaded (one worker
/// driving the one system). Equivalent to [`explore_pool`] on a
/// one-element slice — and bit-identical to it at any twin count.
pub fn explore(cfg: &mut ClosedConfig, opts: &ExploreOptions) -> ExploreReport {
    explore_pool(std::slice::from_mut(cfg), opts)
}

/// Executes one batch of up to `lanes` `(frontier index, choice)` jobs
/// on a worker's configuration twin, returning per-job outcomes for
/// the merge. Lanes beyond the batch are frozen by stalling every
/// edge; each loaded lane's outcome depends only on its own state and
/// choice, which is what makes the parallel walk deterministic.
fn run_batch(
    cfg: &mut ClosedConfig,
    frontier: &[(u32, Vec<u64>)],
    chunk: &[(usize, u8)],
    n_edges: usize,
    plan: &ReductionPlan,
) -> Vec<JobOut> {
    for (k, &(fi, _)) in chunk.iter().enumerate() {
        cfg.load(k, &frontier[fi].1);
    }
    let idle = idle_mask(chunk.len());
    for e in 0..n_edges {
        let mut mask = idle;
        for (k, &(_, choice)) in chunk.iter().enumerate() {
            if choice >> e & 1 == 1 {
                mask |= 1 << k;
            }
        }
        cfg.set_stall(e, mask);
    }
    let before: Vec<u64> = (0..chunk.len()).map(|k| cfg.violations(k)).collect();
    cfg.settle();
    let bad_signals = cfg.signal_bad_mask();
    cfg.step();
    chunk
        .iter()
        .enumerate()
        .map(|(k, &(fi, choice))| {
            let words = cfg.save(k);
            let fault: Option<(&'static str, String)> = if bad_signals >> k & 1 == 1 {
                Some((
                    "signalling",
                    "a void channel carried non-zero data at the settled cycle".into(),
                ))
            } else if cfg.violations(k) > before[k] {
                Some((
                    "sequencing",
                    format!(
                        "{} component-checked fault(s) in one transition \
                         (sink order, relay overflow, or wrapper fault)",
                        cfg.violations(k) - before[k]
                    ),
                ))
            } else {
                cfg.ledger_violation(&words).map(|d| ("conservation", d))
            };
            let (key, folded) = if fault.is_none() {
                plan.canonical_key(&words)
            } else {
                (0, false)
            };
            JobOut {
                parent: frontier[fi].0,
                choice,
                fault,
                words,
                key,
                folded,
            }
        })
        .collect()
}

/// Locks any free configuration twin (workers outnumber neither twins
/// nor batches, so a slot is always about to free up).
fn with_any_slot<R>(
    slots: &[Mutex<&mut ClosedConfig>],
    f: impl FnOnce(&mut ClosedConfig) -> R,
) -> R {
    loop {
        for slot in slots {
            if let Ok(mut cfg) = slot.try_lock() {
                return f(&mut cfg);
            }
        }
        std::thread::yield_now();
    }
}

/// Runs the bounded exploration of `cfgs[0]`, sharding each BFS level
/// across all the configuration twins in `cfgs` (which must be
/// independently built copies of the *same* configuration), one
/// work-stealing worker per twin.
///
/// Jobs are batched into lane-sized chunks exactly as in the
/// single-threaded walk, executed speculatively across the twins, and
/// merged single-threaded in job order — so the report (census,
/// verdicts, counterexamples, every counter except nothing) is
/// bit-identical whatever `cfgs.len()` is.
///
/// # Panics
///
/// Panics when the twins disagree on the configuration, or when the
/// retained arena outgrows [`ExploreOptions::max_retained_words`]
/// (the memory guard).
pub fn explore_pool(cfgs: &mut [ClosedConfig], opts: &ExploreOptions) -> ExploreReport {
    assert!(!cfgs.is_empty(), "need at least one configuration twin");
    let n_edges = cfgs[0].edge_count();
    let branch: u32 = 1 << n_edges;
    let lanes = cfgs[0].lanes();
    let horizon = cfgs[0].free_run_horizon();
    let initial = cfgs[0].initial_state();
    let plan = ReductionPlan::of(&cfgs[0], opts.por, opts.symmetry);
    assert!(
        plan.guards.is_empty() || plan.guards.len() == n_edges,
        "one POR guard per edge"
    );
    for cfg in cfgs.iter().skip(1) {
        assert_eq!(
            cfg.name(),
            cfgs[0].name(),
            "twins must build the same configuration"
        );
        assert_eq!(cfg.initial_state(), initial, "twins must power up alike");
    }

    let mut seen: HashSet<u128> = HashSet::new();
    seen.insert(plan.canonical_key(&initial).0);
    let mut recs: Vec<Rec> = vec![Rec {
        parent: u32::MAX,
        choice: 0,
    }];
    let mut report = ExploreReport {
        config: cfgs[0].name().to_string(),
        depth: opts.depth,
        edges: cfgs[0].edge_names(),
        states: 1,
        transitions: 0,
        dedup_hits: 0,
        por_pruned: 0,
        sym_folds: 0,
        deadlock_checks: 0,
        total_violations: 0,
        truncated: false,
        counterexamples: Vec::new(),
    };

    {
        let workers = cfgs.len();
        let pool = (workers > 1).then(|| WorkStealingPool::new(workers));
        let slots: Vec<Mutex<&mut ClosedConfig>> = cfgs.iter_mut().map(Mutex::new).collect();

        // Executes a super-chunk of batches: fanned out over the twins
        // when a pool exists, in order on the one twin otherwise. Either
        // way each batch's outcome depends only on its own jobs.
        let run_chunks =
            |chunks: &[&[(usize, u8)]], frontier: &[(u32, Vec<u64>)]| -> Vec<Vec<JobOut>> {
                match &pool {
                    Some(pool) => pool.map(chunks.to_vec(), |chunk| {
                        with_any_slot(&slots, |cfg| {
                            run_batch(cfg, frontier, chunk, n_edges, &plan)
                        })
                    }),
                    None => chunks
                        .iter()
                        .map(|chunk| {
                            with_any_slot(&slots, |cfg| {
                                run_batch(cfg, frontier, chunk, n_edges, &plan)
                            })
                        })
                        .collect(),
                }
            };

        let mut frontier: Vec<(u32, Vec<u64>)> = vec![(0, initial.clone())];
        // States awaiting the liveness check (drained level by level; the
        // check clobbers lanes, so it must not interleave with expansion).
        let mut pending: Vec<(u32, Vec<u64>)> = vec![(0, initial)];
        let mut stop = false;

        check_deadlocks(
            pool.as_ref(),
            &slots,
            lanes,
            n_edges,
            horizon,
            &mut pending,
            &recs,
            &mut report,
            opts,
            &mut stop,
        );

        for depth in 0..opts.depth {
            if stop || frontier.is_empty() {
                break;
            }
            let mut next: Vec<(u32, Vec<u64>)> = Vec::new();
            // Partial-order reduction: expand one representative per
            // commuting class — the choice with every inert bit at
            // "flow". The representative is numerically smallest in its
            // class, so it is also the first member job order would
            // reach: first-discovery back-pointers are unchanged.
            let mut jobs: Vec<(usize, u8)> = Vec::new();
            for (fi, (_, words)) in frontier.iter().enumerate() {
                let inert = plan.inert_mask(words);
                if inert == 0 {
                    jobs.extend((0..branch).map(|c| (fi, c as u8)));
                } else {
                    let kept = branch >> inert.count_ones();
                    report.por_pruned += u64::from(branch - kept);
                    jobs.extend(
                        (0..branch)
                            .filter(|&c| u64::from(c) & inert == 0)
                            .map(|c| (fi, c as u8)),
                    );
                }
            }
            let chunks: Vec<&[(usize, u8)]> = jobs.chunks(lanes).collect();
            'level: for superchunk in chunks.chunks(workers * 8) {
                for batch in run_chunks(superchunk, &frontier) {
                    for out in batch {
                        report.transitions += 1;
                        if let Some((kind, detail)) = out.fault {
                            report.total_violations += 1;
                            if report.counterexamples.len() < MAX_RECORDED {
                                let mut schedule = schedule_to(&recs, out.parent);
                                schedule.push(u64::from(out.choice));
                                report.counterexamples.push(Counterexample {
                                    config: report.config.clone(),
                                    kind: kind.to_string(),
                                    edges: report.edges.clone(),
                                    schedule,
                                    free_run: 0,
                                    detail,
                                });
                            }
                            if opts.stop_at_first_violation {
                                stop = true;
                                break 'level;
                            }
                            continue; // violating states are not expanded
                        }
                        if out.folded {
                            report.sym_folds += 1;
                        }
                        if seen.insert(out.key) {
                            let id = recs.len() as u32;
                            recs.push(Rec {
                                parent: out.parent,
                                choice: out.choice,
                            });
                            report.states += 1;
                            next.push((id, out.words.clone()));
                            pending.push((id, out.words));
                            if report.states >= opts.max_states {
                                report.truncated = true;
                                stop = true;
                                break 'level;
                            }
                        } else {
                            report.dedup_hits += 1;
                        }
                    }
                }
            }
            // Memory guard: every word the exploration retains — the
            // next frontier, the liveness queue, the dedup fingerprints
            // (two words each), and the back-pointer arena.
            let retained: usize = next.iter().map(|(_, w)| w.len()).sum::<usize>()
                + pending.iter().map(|(_, w)| w.len()).sum::<usize>()
                + 2 * seen.len()
                + recs.len();
            assert!(
                retained <= opts.max_retained_words,
                "memory guard: {retained} retained words exceed the {}-word cap \
                 after depth {} with {} states discovered — raise \
                 max_retained_words or lower the depth bound",
                opts.max_retained_words,
                depth + 1,
                report.states,
            );
            check_deadlocks(
                pool.as_ref(),
                &slots,
                lanes,
                n_edges,
                horizon,
                &mut pending,
                &recs,
                &mut report,
                opts,
                &mut stop,
            );
            frontier = next;
        }
    }

    if opts.minimize {
        let mut minimized = std::mem::take(&mut report.counterexamples);
        for cx in &mut minimized {
            minimize(&mut cfgs[0], cx);
        }
        report.counterexamples = minimized;
    }
    report
}

/// Liveness-checks every state in `pending`: with every edge stall-free
/// for the config's horizon, each lane's sink must deliver at least one
/// token. A lane that stays silent is a deadlocked state. Chunks run
/// speculatively across the twins; deadlock verdicts merge in chunk
/// order, so the records match the single-threaded walk exactly.
#[allow(clippy::too_many_arguments)]
fn check_deadlocks(
    pool: Option<&WorkStealingPool>,
    slots: &[Mutex<&mut ClosedConfig>],
    lanes: usize,
    n_edges: usize,
    horizon: u64,
    pending: &mut Vec<(u32, Vec<u64>)>,
    recs: &[Rec],
    report: &mut ExploreReport,
    opts: &ExploreOptions,
    stop: &mut bool,
) {
    if *stop || pending.is_empty() {
        pending.clear();
        return;
    }
    let free_run = |cfg: &mut ClosedConfig, chunk: &[(u32, Vec<u64>)]| -> u64 {
        for (k, (_, words)) in chunk.iter().enumerate() {
            cfg.load(k, words);
        }
        let idle = idle_mask(chunk.len());
        for e in 0..n_edges {
            cfg.set_stall(e, idle);
        }
        let before: Vec<u64> = (0..chunk.len()).map(|k| cfg.delivered(k)).collect();
        let mut waiting: u64 = if chunk.len() >= 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        for _ in 0..horizon {
            cfg.step();
            for (k, &base) in before.iter().enumerate() {
                if waiting >> k & 1 == 1 && cfg.delivered(k) > base {
                    waiting &= !(1 << k);
                }
            }
            if waiting == 0 {
                break;
            }
        }
        waiting
    };
    let chunks: Vec<&[(u32, Vec<u64>)]> = pending.chunks(lanes).collect();
    let waitings: Vec<u64> = match pool {
        Some(pool) => pool.map(chunks.clone(), |chunk| {
            with_any_slot(slots, |cfg| free_run(cfg, chunk))
        }),
        None => chunks
            .iter()
            .map(|chunk| with_any_slot(slots, |cfg| free_run(cfg, chunk)))
            .collect(),
    };
    for (chunk, waiting) in chunks.iter().zip(waitings) {
        if *stop {
            break;
        }
        report.deadlock_checks += chunk.len() as u64;
        for (k, &(id, _)) in chunk.iter().enumerate() {
            if waiting >> k & 1 == 1 {
                report.total_violations += 1;
                if report.counterexamples.len() < MAX_RECORDED {
                    report.counterexamples.push(Counterexample {
                        config: report.config.clone(),
                        kind: "deadlock".to_string(),
                        edges: report.edges.clone(),
                        schedule: schedule_to(recs, id),
                        free_run: horizon,
                        detail: format!("no token delivered within {horizon} stall-free cycles"),
                    });
                }
                if opts.stop_at_first_violation {
                    *stop = true;
                }
            }
        }
    }
    drop(chunks);
    pending.clear();
}

/// Replays `schedule` (then `free_run` stall-free cycles) single-lane
/// on the checker configuration, returning the first violated invariant
/// as `(kind, detail)`.
///
/// Lane 0 carries the replay; on a packed configuration every other
/// lane is frozen by stalling all its edges, and only lane 0's deltas
/// are inspected.
pub fn replay_on_checker(
    cfg: &mut ClosedConfig,
    schedule: &[u64],
    free_run: u64,
) -> Option<(String, String)> {
    let initial = cfg.initial_state();
    cfg.load(0, &initial);
    let others = !1u64;
    for (cycle, &mask) in schedule.iter().enumerate() {
        for e in 0..cfg.edge_count() {
            cfg.set_stall(e, (mask >> e & 1) | others);
        }
        let before = cfg.violations(0);
        cfg.settle();
        let bad = cfg.signal_bad_mask() & 1 != 0;
        cfg.step();
        if bad {
            return Some((
                "signalling".into(),
                format!("void channel carried data at cycle {cycle}"),
            ));
        }
        if cfg.violations(0) > before {
            return Some((
                "sequencing".into(),
                format!("component-checked fault at cycle {cycle}"),
            ));
        }
        let words = cfg.save(0);
        if let Some(detail) = cfg.ledger_violation(&words) {
            return Some(("conservation".into(), detail));
        }
    }
    if free_run > 0 {
        for e in 0..cfg.edge_count() {
            cfg.set_stall(e, others);
        }
        let before = cfg.delivered(0);
        for _ in 0..free_run {
            cfg.step();
            if cfg.delivered(0) > before {
                return None;
            }
        }
        return Some((
            "deadlock".into(),
            format!("no token delivered within {free_run} stall-free cycles"),
        ));
    }
    None
}

/// Greedy counterexample minimization: clears each stall bit in turn
/// and keeps the clearing whenever the same kind of violation still
/// reproduces; then trims trailing stall-free cycles (deadlock
/// schedules only — an invariant violation always fires on the final
/// transition).
fn minimize(cfg: &mut ClosedConfig, cx: &mut Counterexample) {
    let reproduces = |cfg: &mut ClosedConfig, sched: &[u64]| {
        replay_on_checker(cfg, sched, cx.free_run).is_some_and(|(kind, _)| kind == cx.kind)
    };
    if !reproduces(cfg, &cx.schedule) {
        // A counterexample this function cannot reproduce single-lane is
        // left untouched rather than mangled.
        return;
    }
    let mut sched = cx.schedule.clone();
    for cycle in 0..sched.len() {
        for e in 0..cx.edges.len() {
            let bit = 1u64 << e;
            if sched[cycle] & bit != 0 {
                sched[cycle] &= !bit;
                if !reproduces(cfg, &sched) {
                    sched[cycle] |= bit;
                }
            }
        }
    }
    while sched.last() == Some(&0) {
        let popped = sched.pop().unwrap();
        if !reproduces(cfg, &sched) {
            sched.push(popped);
            break;
        }
    }
    cx.schedule = sched;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{scalar_sp, scalar_spj};

    #[test]
    fn scalar_exploration_of_the_correct_wrapper_is_clean() {
        let mut cfg = scalar_sp("sp1-scalar", 0, None);
        let report = explore(
            &mut cfg,
            &ExploreOptions {
                depth: 6,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(report.total_violations, 0, "{:#?}", report.counterexamples);
        assert!(report.states > 20, "six levels must fan out: {report:?}");
        assert_eq!(
            report.transitions,
            report.dedup_hits + report.states - 1,
            "every transition either discovers or rediscovers"
        );
        assert!(!report.truncated);
    }

    #[test]
    fn exploration_is_deterministic() {
        let opts = ExploreOptions {
            depth: 5,
            ..ExploreOptions::default()
        };
        let a = explore(&mut scalar_sp("sp1-scalar", 0, None), &opts);
        let b = explore(&mut scalar_sp("sp1-scalar", 0, None), &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_twins_report_bit_identically() {
        let opts = ExploreOptions {
            depth: 5,
            ..ExploreOptions::default()
        };
        let single = explore(&mut scalar_sp("sp1-scalar", 0, None), &opts);
        let mut twins: Vec<_> = (0..3).map(|_| scalar_sp("sp1-scalar", 0, None)).collect();
        let pooled = explore_pool(&mut twins, &opts);
        assert_eq!(single, pooled);
    }

    #[test]
    fn partial_order_reduction_preserves_the_census() {
        let reduced = explore(
            &mut scalar_sp("sp1-scalar", 0, None),
            &ExploreOptions {
                depth: 6,
                ..ExploreOptions::default()
            },
        );
        let unreduced = explore(
            &mut scalar_sp("sp1-scalar", 0, None),
            &ExploreOptions {
                depth: 6,
                por: false,
                symmetry: false,
                ..ExploreOptions::default()
            },
        );
        assert!(reduced.por_pruned > 0, "guards must fire: {reduced:?}");
        assert_eq!(reduced.states, unreduced.states, "census is preserved");
        assert_eq!(reduced.deadlock_checks, unreduced.deadlock_checks);
        assert_eq!(
            reduced.transitions + reduced.por_pruned,
            unreduced.transitions,
            "pruning accounts for every skipped transition"
        );
    }

    #[test]
    fn symmetry_folds_mirror_states() {
        let report = explore(
            &mut scalar_spj("spj-sym"),
            &ExploreOptions {
                depth: 4,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(report.total_violations, 0, "{:#?}", report.counterexamples);
        assert!(report.sym_folds > 0, "mirror states must fold: {report:?}");
    }

    #[test]
    #[should_panic(expected = "memory guard")]
    fn memory_guard_fails_loudly_with_the_depth_reached() {
        let mut cfg = scalar_sp("sp1-scalar", 0, None);
        explore(
            &mut cfg,
            &ExploreOptions {
                depth: 4,
                max_retained_words: 64,
                ..ExploreOptions::default()
            },
        );
    }

    #[test]
    fn replay_on_checker_matches_exploration_verdict() {
        let mut cfg = scalar_sp("sp1-scalar", 0, None);
        // An arbitrary clean schedule replays clean...
        assert_eq!(replay_on_checker(&mut cfg, &[1, 3, 2, 0, 3], 0), None);
        // ...and the free-run probe sees progress (no deadlock).
        assert_eq!(replay_on_checker(&mut cfg, &[3, 3, 3], 64), None);
    }
}

//! The bounded reachability explorer.
//!
//! From a [`ClosedConfig`]'s power-up state, the explorer walks the
//! tree of adversary decisions breadth-first: each cycle every
//! controlled edge independently stalls or flows, so a state has
//! `2^edges` successors. States are deduplicated by a 64-bit hash of
//! their dense lane snapshot ([`lis_sim::hash_words`]), which collapses
//! the exponential tree into the reachable state graph. On a packed
//! configuration the 64 SIMD lanes of the underlying engine expand 64
//! pending `(state, choice)` jobs per settle/tick pass.
//!
//! Every transition is checked against three safety invariants —
//! sequencing (the sink's order counter), conservation (the KPN ledger
//! `(source seq − sink expect) mod 64 ≤ capacity`), signalling
//! legality (`void ⇒ data == 0` on every probed channel at the settled
//! cycle) — and every *new* state against one liveness invariant:
//! some stall-free continuation must deliver a token within the
//! config's free-run horizon (deadlock freedom). A violation becomes a
//! [`Counterexample`], greedily minimized by clearing stall bits that
//! are not needed to reproduce it.

use crate::config::ClosedConfig;
use crate::counterexample::Counterexample;
use lis_sim::hash_words;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Cap on fully recorded counterexamples per report (the total count
/// keeps counting past it — a mutant config can violate on a large
/// fraction of its transitions).
const MAX_RECORDED: usize = 8;

/// Explorer knobs.
#[derive(Debug, Clone)]
pub struct ExploreOptions {
    /// Adversary-decision depth bound (cycles from reset).
    pub depth: u32,
    /// Stop at the first violation instead of completing the depth
    /// (the mutant-catching mode).
    pub stop_at_first_violation: bool,
    /// Hard cap on discovered states; exploration is marked truncated
    /// beyond it.
    pub max_states: u64,
    /// Greedily minimize recorded counterexamples.
    pub minimize: bool,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            depth: 12,
            stop_at_first_violation: false,
            max_states: 2_000_000,
            minimize: true,
        }
    }
}

/// What a bounded exploration saw.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Configuration name.
    pub config: String,
    /// Depth bound the run used.
    pub depth: u32,
    /// Controlled edges, stall-mask bit order.
    pub edges: Vec<String>,
    /// Unique states discovered (including the initial state).
    pub states: u64,
    /// Transitions executed (`state × choice` expansions).
    pub transitions: u64,
    /// Transitions that landed on an already-known state.
    pub dedup_hits: u64,
    /// States liveness-checked against the free-run horizon.
    pub deadlock_checks: u64,
    /// Total violating transitions/states observed.
    pub total_violations: u64,
    /// Whether the state cap truncated the search.
    pub truncated: bool,
    /// Recorded (and optionally minimized) counterexamples, capped at
    /// `MAX_RECORDED` (the total count keeps counting past the cap).
    pub counterexamples: Vec<Counterexample>,
}

/// Back-pointer record: how state `i` was first reached.
struct Rec {
    parent: u32,
    choice: u8,
}

/// Reconstructs the root→`id` choice schedule from the back-pointers.
fn schedule_to(recs: &[Rec], mut id: u32) -> Vec<u64> {
    let mut rev = Vec::new();
    while id != 0 {
        rev.push(u64::from(recs[id as usize].choice));
        id = recs[id as usize].parent;
    }
    rev.reverse();
    rev
}

/// Lanes `chunk_len..lanes` as a stall mask (idle lanes of a partially
/// filled batch are frozen by stalling every edge).
fn idle_mask(chunk_len: usize) -> u64 {
    if chunk_len >= 64 {
        0
    } else {
        !0u64 << chunk_len
    }
}

/// Runs the bounded exploration of `cfg`.
pub fn explore(cfg: &mut ClosedConfig, opts: &ExploreOptions) -> ExploreReport {
    let n_edges = cfg.edge_count();
    let branch: u32 = 1 << n_edges;
    let lanes = cfg.lanes();

    let initial = cfg.initial_state();
    let mut seen: HashSet<u64> = HashSet::new();
    seen.insert(hash_words(&initial));
    let mut recs: Vec<Rec> = vec![Rec {
        parent: u32::MAX,
        choice: 0,
    }];
    let mut report = ExploreReport {
        config: cfg.name().to_string(),
        depth: opts.depth,
        edges: cfg.edge_names(),
        states: 1,
        transitions: 0,
        dedup_hits: 0,
        deadlock_checks: 0,
        total_violations: 0,
        truncated: false,
        counterexamples: Vec::new(),
    };

    let mut frontier: Vec<(u32, Vec<u64>)> = vec![(0, initial.clone())];
    // States awaiting the liveness check (drained level by level; the
    // check clobbers lanes, so it must not interleave with expansion).
    let mut pending: Vec<(u32, Vec<u64>)> = vec![(0, initial)];
    let mut stop = false;

    check_deadlocks(cfg, &mut pending, &recs, &mut report, opts, &mut stop);

    for _depth in 0..opts.depth {
        if stop || frontier.is_empty() {
            break;
        }
        let mut next: Vec<(u32, Vec<u64>)> = Vec::new();
        let jobs: Vec<(usize, u8)> = (0..frontier.len())
            .flat_map(|fi| (0..branch).map(move |c| (fi, c as u8)))
            .collect();
        'level: for chunk in jobs.chunks(lanes) {
            for (k, &(fi, _)) in chunk.iter().enumerate() {
                cfg.load(k, &frontier[fi].1);
            }
            let idle = idle_mask(chunk.len());
            for e in 0..n_edges {
                let mut mask = idle;
                for (k, &(_, choice)) in chunk.iter().enumerate() {
                    if choice >> e & 1 == 1 {
                        mask |= 1 << k;
                    }
                }
                cfg.set_stall(e, mask);
            }
            let before: Vec<u64> = (0..chunk.len()).map(|k| cfg.violations(k)).collect();
            cfg.settle();
            let bad_signals = cfg.signal_bad_mask();
            cfg.step();
            for (k, &(fi, choice)) in chunk.iter().enumerate() {
                let parent = frontier[fi].0;
                report.transitions += 1;
                let words = cfg.save(k);
                let fault: Option<(&str, String)> = if bad_signals >> k & 1 == 1 {
                    Some((
                        "signalling",
                        "a void channel carried non-zero data at the settled cycle".into(),
                    ))
                } else if cfg.violations(k) > before[k] {
                    Some((
                        "sequencing",
                        format!(
                            "{} component-checked fault(s) in one transition \
                             (sink order, relay overflow, or wrapper fault)",
                            cfg.violations(k) - before[k]
                        ),
                    ))
                } else {
                    cfg.ledger_violation(&words).map(|d| ("conservation", d))
                };
                if let Some((kind, detail)) = fault {
                    report.total_violations += 1;
                    if report.counterexamples.len() < MAX_RECORDED {
                        let mut schedule = schedule_to(&recs, parent);
                        schedule.push(u64::from(choice));
                        report.counterexamples.push(Counterexample {
                            config: cfg.name().to_string(),
                            kind: kind.to_string(),
                            edges: cfg.edge_names(),
                            schedule,
                            free_run: 0,
                            detail: detail.clone(),
                        });
                    }
                    if opts.stop_at_first_violation {
                        stop = true;
                        break 'level;
                    }
                    continue; // violating states are not expanded
                }
                let hash = hash_words(&words);
                if seen.insert(hash) {
                    let id = recs.len() as u32;
                    recs.push(Rec { parent, choice });
                    report.states += 1;
                    next.push((id, words.clone()));
                    pending.push((id, words));
                    if report.states >= opts.max_states {
                        report.truncated = true;
                        stop = true;
                        break 'level;
                    }
                } else {
                    report.dedup_hits += 1;
                }
            }
        }
        check_deadlocks(cfg, &mut pending, &recs, &mut report, opts, &mut stop);
        frontier = next;
    }

    if opts.minimize {
        let mut minimized = std::mem::take(&mut report.counterexamples);
        for cx in &mut minimized {
            minimize(cfg, cx);
        }
        report.counterexamples = minimized;
    }
    report
}

/// Liveness-checks every state in `pending`: with every edge stall-free
/// for the config's horizon, each lane's sink must deliver at least one
/// token. A lane that stays silent is a deadlocked state.
fn check_deadlocks(
    cfg: &mut ClosedConfig,
    pending: &mut Vec<(u32, Vec<u64>)>,
    recs: &[Rec],
    report: &mut ExploreReport,
    opts: &ExploreOptions,
    stop: &mut bool,
) {
    let lanes = cfg.lanes();
    let horizon = cfg.free_run_horizon();
    for chunk in pending.chunks(lanes) {
        if *stop {
            break;
        }
        for (k, (_, words)) in chunk.iter().enumerate() {
            cfg.load(k, words);
        }
        let idle = idle_mask(chunk.len());
        for e in 0..cfg.edge_count() {
            cfg.set_stall(e, idle);
        }
        let before: Vec<u64> = (0..chunk.len()).map(|k| cfg.delivered(k)).collect();
        let mut waiting: u64 = if chunk.len() >= 64 {
            !0
        } else {
            (1u64 << chunk.len()) - 1
        };
        for _ in 0..horizon {
            cfg.step();
            for (k, &base) in before.iter().enumerate() {
                if waiting >> k & 1 == 1 && cfg.delivered(k) > base {
                    waiting &= !(1 << k);
                }
            }
            if waiting == 0 {
                break;
            }
        }
        report.deadlock_checks += chunk.len() as u64;
        for (k, &(id, _)) in chunk.iter().enumerate() {
            if waiting >> k & 1 == 1 {
                report.total_violations += 1;
                if report.counterexamples.len() < MAX_RECORDED {
                    report.counterexamples.push(Counterexample {
                        config: cfg.name().to_string(),
                        kind: "deadlock".to_string(),
                        edges: cfg.edge_names(),
                        schedule: schedule_to(recs, id),
                        free_run: horizon,
                        detail: format!("no token delivered within {horizon} stall-free cycles"),
                    });
                }
                if opts.stop_at_first_violation {
                    *stop = true;
                }
            }
        }
    }
    pending.clear();
}

/// Replays `schedule` (then `free_run` stall-free cycles) single-lane
/// on the checker configuration, returning the first violated invariant
/// as `(kind, detail)`.
///
/// Lane 0 carries the replay; on a packed configuration every other
/// lane is frozen by stalling all its edges, and only lane 0's deltas
/// are inspected.
pub fn replay_on_checker(
    cfg: &mut ClosedConfig,
    schedule: &[u64],
    free_run: u64,
) -> Option<(String, String)> {
    let initial = cfg.initial_state();
    cfg.load(0, &initial);
    let others = !1u64;
    for (cycle, &mask) in schedule.iter().enumerate() {
        for e in 0..cfg.edge_count() {
            cfg.set_stall(e, (mask >> e & 1) | others);
        }
        let before = cfg.violations(0);
        cfg.settle();
        let bad = cfg.signal_bad_mask() & 1 != 0;
        cfg.step();
        if bad {
            return Some((
                "signalling".into(),
                format!("void channel carried data at cycle {cycle}"),
            ));
        }
        if cfg.violations(0) > before {
            return Some((
                "sequencing".into(),
                format!("component-checked fault at cycle {cycle}"),
            ));
        }
        let words = cfg.save(0);
        if let Some(detail) = cfg.ledger_violation(&words) {
            return Some(("conservation".into(), detail));
        }
    }
    if free_run > 0 {
        for e in 0..cfg.edge_count() {
            cfg.set_stall(e, others);
        }
        let before = cfg.delivered(0);
        for _ in 0..free_run {
            cfg.step();
            if cfg.delivered(0) > before {
                return None;
            }
        }
        return Some((
            "deadlock".into(),
            format!("no token delivered within {free_run} stall-free cycles"),
        ));
    }
    None
}

/// Greedy counterexample minimization: clears each stall bit in turn
/// and keeps the clearing whenever the same kind of violation still
/// reproduces; then trims trailing stall-free cycles (deadlock
/// schedules only — an invariant violation always fires on the final
/// transition).
fn minimize(cfg: &mut ClosedConfig, cx: &mut Counterexample) {
    let reproduces = |cfg: &mut ClosedConfig, sched: &[u64]| {
        replay_on_checker(cfg, sched, cx.free_run).is_some_and(|(kind, _)| kind == cx.kind)
    };
    if !reproduces(cfg, &cx.schedule) {
        // A counterexample this function cannot reproduce single-lane is
        // left untouched rather than mangled.
        return;
    }
    let mut sched = cx.schedule.clone();
    for cycle in 0..sched.len() {
        for e in 0..cx.edges.len() {
            let bit = 1u64 << e;
            if sched[cycle] & bit != 0 {
                sched[cycle] &= !bit;
                if !reproduces(cfg, &sched) {
                    sched[cycle] |= bit;
                }
            }
        }
    }
    while sched.last() == Some(&0) {
        let popped = sched.pop().unwrap();
        if !reproduces(cfg, &sched) {
            sched.push(popped);
            break;
        }
    }
    cx.schedule = sched;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::scalar_sp;

    #[test]
    fn scalar_exploration_of_the_correct_wrapper_is_clean() {
        let mut cfg = scalar_sp("sp1-scalar", 0, None);
        let report = explore(
            &mut cfg,
            &ExploreOptions {
                depth: 6,
                ..ExploreOptions::default()
            },
        );
        assert_eq!(report.total_violations, 0, "{:#?}", report.counterexamples);
        assert!(report.states > 20, "six levels must fan out: {report:?}");
        assert_eq!(
            report.transitions,
            report.dedup_hits + report.states - 1,
            "every transition either discovers or rediscovers"
        );
        assert!(!report.truncated);
    }

    #[test]
    fn exploration_is_deterministic() {
        let opts = ExploreOptions {
            depth: 5,
            ..ExploreOptions::default()
        };
        let a = explore(&mut scalar_sp("sp1-scalar", 0, None), &opts);
        let b = explore(&mut scalar_sp("sp1-scalar", 0, None), &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn replay_on_checker_matches_exploration_verdict() {
        let mut cfg = scalar_sp("sp1-scalar", 0, None);
        // An arbitrary clean schedule replays clean...
        assert_eq!(replay_on_checker(&mut cfg, &[1, 3, 2, 0, 3], 0), None);
        // ...and the free-run probe sees progress (no deadlock).
        assert_eq!(replay_on_checker(&mut cfg, &[3, 3, 3], 64), None);
    }
}

//! Deliberately broken protocol components — the mutation-validation
//! corpus.
//!
//! Each mutant is a minimal, plausible implementation slip of the relay
//! station or the SP's synchronization policy. None of them self-report:
//! a mutant misbehaves *silently*, exactly like a real bug would, and it
//! is the model checker's invariants (sequencing, conservation, deadlock
//! freedom) that must expose it within the search depth. A mutant the
//! checker cannot catch would mean the verification harness is blind to
//! that fault class.

use lis_proto::LisChannel;
use lis_schedule::IoSchedule;
use lis_sim::{Activity, Component, Ports, SignalView};
use lis_wrappers::{Decision, SyncPolicy};

/// Which seeded bug a [`MutantRelay`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayBug {
    /// Back-pressure is announced one cycle late: under a double stall
    /// the upstream producer legally sends into a full relay and the
    /// token is silently dropped (the classic off-by-one in the stop
    /// register path).
    DropOnDoubleStall,
    /// After back-pressure releases with the relay drained, the last
    /// forwarded token is re-emitted once (a stale through-register
    /// marked valid again on restart).
    DuplicateOnRestart,
    /// `stop` latches: once the overflow slot has been used the relay
    /// asserts back-pressure forever, wedging the upstream pipeline
    /// (a set-dominant latch where a flip-flop was intended).
    StuckStop,
}

impl RelayBug {
    /// Stable short name, used in counterexample files and reports.
    pub fn name(self) -> &'static str {
        match self {
            RelayBug::DropOnDoubleStall => "drop-on-double-stall",
            RelayBug::DuplicateOnRestart => "duplicate-on-restart",
            RelayBug::StuckStop => "stuck-stop",
        }
    }
}

/// A relay station with one seeded [`RelayBug`]. Outside the bug's
/// trigger window it behaves exactly like the correct
/// [`lis_proto::RelayStation`]: two buffer places, registered stop.
#[derive(Debug)]
pub struct MutantRelay {
    name: String,
    upstream: LisChannel,
    downstream: LisChannel,
    bug: RelayBug,
    main: Option<u64>,
    aux: Option<u64>,
    /// Registered stop actually *announced* upstream this cycle.
    stop_up: bool,
    /// One-cycle-delayed stop pipeline stage (`DropOnDoubleStall`).
    stop_pending: bool,
    /// Whether stop has ever been asserted (`StuckStop`).
    stop_latched: bool,
    /// Last token forwarded downstream and whether the previous cycle
    /// was stalled (`DuplicateOnRestart`).
    last_sent: Option<u64>,
    was_stalled: bool,
}

impl MutantRelay {
    /// Creates the mutant relay forwarding `upstream` to `downstream`.
    pub fn new(
        name: impl Into<String>,
        upstream: LisChannel,
        downstream: LisChannel,
        bug: RelayBug,
    ) -> Self {
        assert_eq!(upstream.width, downstream.width, "relay channel widths");
        MutantRelay {
            name: name.into(),
            upstream,
            downstream,
            bug,
            main: None,
            aux: None,
            stop_up: false,
            stop_pending: false,
            stop_latched: false,
            last_sent: None,
            was_stalled: false,
        }
    }
}

impl Component for MutantRelay {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.downstream
            .producer_ports()
            .merge(self.upstream.consumer_ports())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let tok = match self.main {
            Some(v) => lis_proto::Token::Data(v),
            None => lis_proto::Token::Void,
        };
        self.downstream.write_token(sigs, tok);
        self.upstream.write_stop(sigs, self.stop_up);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let stalled = self.downstream.read_stop(sigs);
        // The upstream producer reacted to what we *announced*
        // (`stop_up`), so that is also what gates absorption.
        let incoming = if self.stop_up {
            None
        } else {
            self.upstream.read_token(sigs).data()
        };

        // 1. Downstream consumes the through register unless stalled.
        if !stalled {
            if let Some(v) = self.main.take() {
                self.last_sent = Some(v);
            }
        }
        // 2. The overflow slot backfills.
        if self.main.is_none() {
            if let Some(v) = self.aux.take() {
                self.main = Some(v);
            }
        }
        // 2b. DuplicateOnRestart: back-pressure just released with the
        // relay drained — the stale through register springs back to
        // life with the previous token.
        if self.bug == RelayBug::DuplicateOnRestart
            && self.was_stalled
            && !stalled
            && self.main.is_none()
            && self.aux.is_none()
        {
            if let Some(v) = self.last_sent.take() {
                self.main = Some(v);
            }
        }
        // 3. Absorb the incoming token; with both places full it is
        //    silently dropped (only the late-stop bug can get here).
        if let Some(v) = incoming {
            if self.main.is_none() {
                self.main = Some(v);
            } else if self.aux.is_none() {
                self.aux = Some(v);
            }
            // else: dropped on the floor — no counter, no trace.
        }
        // 4. Announce back-pressure.
        let stop_now = self.aux.is_some();
        self.stop_up = match self.bug {
            // Correct timing: announce the same cycle aux fills.
            RelayBug::DuplicateOnRestart => stop_now,
            // One pipeline stage too many in the stop path.
            RelayBug::DropOnDoubleStall => {
                let announced = self.stop_pending;
                self.stop_pending = stop_now;
                announced
            }
            // Set-dominant latch.
            RelayBug::StuckStop => {
                self.stop_latched |= stop_now;
                self.stop_latched
            }
        };
        self.was_stalled = stalled;
        Activity::Active
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.main.is_some() as u64);
        out.push(self.main.unwrap_or(0));
        out.push(self.aux.is_some() as u64);
        out.push(self.aux.unwrap_or(0));
        out.push(
            self.stop_up as u64
                | (self.stop_pending as u64) << 1
                | (self.stop_latched as u64) << 2
                | (self.was_stalled as u64) << 3
                | (self.last_sent.is_some() as u64) << 4,
        );
        out.push(self.last_sent.unwrap_or(0));
    }

    fn load_state(&mut self, data: &[u64]) {
        self.main = (data[0] != 0).then_some(data[1]);
        self.aux = (data[2] != 0).then_some(data[3]);
        self.stop_up = data[4] & 1 != 0;
        self.stop_pending = data[4] & 2 != 0;
        self.stop_latched = data[4] & 4 != 0;
        self.was_stalled = data[4] & 8 != 0;
        self.last_sent = (data[4] & 16 != 0).then_some(data[5]);
    }
}

/// The SP-policy mutant: fires on every cycle of the schedule without
/// sensing port readiness — the synchronization logic optimized away.
/// The wrapper records pop-empty/push-full faults the moment the
/// environment is slower than the schedule.
#[derive(Debug)]
pub struct EagerPolicy {
    schedule: IoSchedule,
    step: usize,
}

impl EagerPolicy {
    /// Creates the mutant policy for `schedule`.
    pub fn new(schedule: IoSchedule) -> Self {
        EagerPolicy { schedule, step: 0 }
    }
}

impl SyncPolicy for EagerPolicy {
    fn decide(&self, _not_empty: &[bool], _not_full: &[bool]) -> Decision {
        let io = self.schedule.at(self.step);
        Decision {
            fire: true,
            reads: io.reads,
            writes: io.writes,
        }
    }

    fn commit(&mut self, fired: bool) -> bool {
        if fired {
            self.step = (self.step + 1) % self.schedule.period();
        }
        fired
    }

    fn reset(&mut self) {
        self.step = 0;
    }

    fn model_name(&self) -> &'static str {
        "eager-mutant"
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.step as u64);
    }

    fn load_state(&mut self, data: &[u64]) {
        self.step = data[0] as usize;
    }
}

//! Counterexample replay corpus: every committed JSON trace under
//! `tests/counterexamples/` is loaded and replayed through the
//! ordinary [`lis_core::Soc`] simulator. The verdict must hold on both
//! sides of the fault: the seeded-mutant SoC reproduces the recorded
//! violation, and the fixed SoC of the same shape replays the very
//! same adversary schedule cleanly. Regenerate the corpus with
//! `cargo run --release -p lis-bench --bin verify -- --corpus
//! crates/lis-verify/tests/counterexamples`.

use lis_verify::{build_config, replay_on_checker, replay_on_soc, Counterexample};

fn corpus() -> Vec<(String, Counterexample)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/counterexamples");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .collect();
    entries.sort();
    assert!(!entries.is_empty(), "corpus must not be empty");
    entries
        .into_iter()
        .map(|path| {
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            let json = std::fs::read_to_string(&path).expect("readable corpus file");
            let cx = Counterexample::from_json(&json)
                .unwrap_or_else(|e| panic!("{name}: malformed counterexample: {e}"));
            (name, cx)
        })
        .collect()
}

#[test]
fn corpus_covers_every_mutant() {
    let names: Vec<String> = corpus().into_iter().map(|(_, cx)| cx.config).collect();
    for required in lis_verify::MUTANT_CONFIGS {
        assert!(
            names.iter().any(|n| n == required),
            "no committed counterexample for {required} (have {names:?})"
        );
    }
}

#[test]
fn every_committed_trace_reproduces_on_the_seeded_soc() {
    for (name, cx) in corpus() {
        let verdict = replay_on_soc(&cx, true);
        assert!(
            verdict.reproduces(&cx.kind),
            "{name}: expected a {} violation, got {verdict:?}",
            cx.kind
        );
    }
}

#[test]
fn every_committed_trace_passes_on_the_fixed_soc() {
    for (name, cx) in corpus() {
        let verdict = replay_on_soc(&cx, false);
        assert!(
            verdict.clean(),
            "{name}: the fixed SoC must be insensitive to this schedule, got {verdict:?}"
        );
    }
}

#[test]
fn every_committed_trace_reproduces_on_the_checker() {
    for (name, cx) in corpus() {
        let mut cfg = build_config(&cx.config)
            .unwrap_or_else(|| panic!("{name}: unknown config {:?}", cx.config));
        let verdict = replay_on_checker(&mut cfg, &cx.schedule, cx.free_run);
        assert_eq!(
            verdict.as_ref().map(|(kind, _)| kind.as_str()),
            Some(cx.kind.as_str()),
            "{name}: checker replay disagrees with the recorded kind"
        );
    }
}

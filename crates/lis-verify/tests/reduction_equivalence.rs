//! Reduction equivalence: pruning the walk must never change what the
//! checker concludes. Partial-order reduction is census-preserving —
//! same reachable states, same back-pointers, same counterexamples,
//! with `transitions + por_pruned` accounting for every skipped
//! expansion exactly. Symmetry reduction may shrink the census (mirror
//! states fold into one orbit) but must preserve the verdict. And the
//! parallel frontier expansion must be bit-identical at any twin
//! count, reductions on or off.

use lis_verify::{
    build_config, explore, explore_pool, replay_on_checker, ExploreOptions, MUTANT_CONFIGS,
};
use proptest::prelude::*;

fn options(depth: u32, por: bool, symmetry: bool) -> ExploreOptions {
    ExploreOptions {
        depth,
        por,
        symmetry,
        ..ExploreOptions::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn reduced_and_unreduced_explorations_agree(
        which in 0usize..3,
        depth in 3u32..6,
    ) {
        let name = ["sp1-scalar", "sp2-scalar", "spj-sym"][which];
        let full = explore(&mut build_config(name).unwrap(), &options(depth, true, true));
        let bare = explore(&mut build_config(name).unwrap(), &options(depth, false, false));
        prop_assert_eq!(full.total_violations, bare.total_violations);
        prop_assert_eq!(full.truncated, bare.truncated);

        // POR alone preserves the census, the liveness queue, and the
        // recorded counterexamples exactly; the pruning counter
        // accounts for every transition the unreduced walk executes.
        let por_only = explore(&mut build_config(name).unwrap(), &options(depth, true, false));
        prop_assert_eq!(por_only.states, bare.states);
        prop_assert_eq!(por_only.deadlock_checks, bare.deadlock_checks);
        prop_assert_eq!(por_only.transitions + por_only.por_pruned, bare.transitions);
        prop_assert_eq!(&por_only.counterexamples, &bare.counterexamples);

        // Symmetry on top can only shrink the census, never grow it.
        prop_assert!(full.states <= por_only.states);
    }
}

#[test]
fn mutants_are_caught_in_every_reduction_mode_with_replayable_schedules() {
    for name in MUTANT_CONFIGS {
        for (por, symmetry) in [(true, true), (false, false)] {
            let mut cfg = build_config(name).unwrap();
            let report = explore(
                &mut cfg,
                &ExploreOptions {
                    depth: 24,
                    stop_at_first_violation: true,
                    por,
                    symmetry,
                    ..ExploreOptions::default()
                },
            );
            let cx = report
                .counterexamples
                .into_iter()
                .next()
                .unwrap_or_else(|| panic!("{name}: mutant escaped with por={por}"));
            let mut replay_cfg = build_config(name).unwrap();
            let verdict = replay_on_checker(&mut replay_cfg, &cx.schedule, cx.free_run);
            assert_eq!(
                verdict.map(|(kind, _)| kind),
                Some(cx.kind.clone()),
                "{name} por={por}: schedule {:?} must replay to the recorded verdict",
                cx.schedule
            );
        }
    }
}

#[test]
fn parallel_exploration_is_bit_identical_across_twin_counts() {
    for name in ["sp1-scalar", "spj-sym"] {
        for (por, symmetry) in [(true, true), (false, false)] {
            let opts = options(5, por, symmetry);
            let one = explore(&mut build_config(name).unwrap(), &opts);
            let mut twins: Vec<_> = (0..4).map(|_| build_config(name).unwrap()).collect();
            let four = explore_pool(&mut twins, &opts);
            assert_eq!(one, four, "{name} por={por}");
        }
    }
}

//! Mutation validation: the checker is only trustworthy if it has
//! teeth. Every deliberately broken protocol component
//! ([`lis_verify::mutants`]) must be caught by the bounded exploration,
//! with the verdict kind the fault class predicts, and the resulting
//! counterexample must round-trip: reproduce on a seeded [`Soc`] twin,
//! pass cleanly on the fixed one, and still reproduce after greedy
//! minimization.

use lis_verify::{
    build_config, explore, replay_on_checker, replay_on_soc, ExploreOptions, MUTANT_CONFIGS,
};

/// Depth for the mutant hunts: trigger window plus detection latency
/// (a fault at the wrapper's input edge is only observable once its
/// successor token has crossed the period-3 pipeline to the sink).
const DEPTH: u32 = 24;

fn expected_kinds(config: &str) -> &'static [&'static str] {
    match config {
        "mut-drop" | "mut-dup" => &["sequencing", "conservation"],
        "mut-stuck" => &["deadlock"],
        "mut-eager" => &["sequencing"],
        other => panic!("unknown mutant config {other}"),
    }
}

fn hunt(name: &str) -> lis_verify::Counterexample {
    let mut cfg = build_config(name).expect("registered mutant config");
    let report = explore(
        &mut cfg,
        &ExploreOptions {
            depth: DEPTH,
            stop_at_first_violation: true,
            ..ExploreOptions::default()
        },
    );
    report
        .counterexamples
        .into_iter()
        .next()
        .unwrap_or_else(|| panic!("{name}: mutant escaped the checker within depth {DEPTH}"))
}

#[test]
fn every_seeded_mutant_is_caught_with_the_expected_verdict() {
    for name in MUTANT_CONFIGS {
        let cx = hunt(name);
        assert!(
            expected_kinds(name).contains(&cx.kind.as_str()),
            "{name}: caught as {:?}, expected one of {:?}",
            cx.kind,
            expected_kinds(name)
        );
    }
}

#[test]
fn minimized_counterexamples_reproduce_on_the_checker() {
    for name in MUTANT_CONFIGS {
        let cx = hunt(name);
        let mut cfg = build_config(name).unwrap();
        let verdict = replay_on_checker(&mut cfg, &cx.schedule, cx.free_run);
        assert_eq!(
            verdict.as_ref().map(|(kind, _)| kind.as_str()),
            Some(cx.kind.as_str()),
            "{name}: minimized schedule {:?} must still reproduce",
            cx.schedule
        );
    }
}

#[test]
fn counterexamples_reproduce_on_the_seeded_soc_and_pass_on_the_fixed_one() {
    for name in MUTANT_CONFIGS {
        let cx = hunt(name);
        let seeded = replay_on_soc(&cx, true);
        assert!(
            seeded.reproduces(&cx.kind),
            "{name}: seeded SoC replay did not reproduce {:?}: {seeded:?}",
            cx.kind
        );
        let fixed = replay_on_soc(&cx, false);
        assert!(
            fixed.clean(),
            "{name}: the fixed SoC must replay the same schedule cleanly: {fixed:?}"
        );
    }
}

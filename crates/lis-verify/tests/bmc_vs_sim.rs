//! Checker-vs-simulator equivalence, property-tested.
//!
//! The bounded explorer reasons about a [`lis_verify::ClosedConfig`] it
//! drives cycle-by-cycle through external stall atomics; the regression
//! replays go through an ordinary [`lis_core::SocBuilder`] SoC with
//! scripted adversaries. These are the *same* protocol components in
//! two different harnesses, so for any stall schedule within the
//! exploration depth they must agree state-for-state: identical sink
//! delivery counts every cycle, and a final KPN ledger (source sequence
//! / sink expectation mod [`lis_verify::MODULUS`]) that matches the
//! simulator's delivered count exactly.

use lis_core::SocBuilder;
use lis_proto::{Pearl, StallControl};
use lis_verify::{build_config, ClosedConfig, JoinPearl, MODULUS};
use lis_wrappers::SpPolicy;
use proptest::prelude::*;
use std::sync::atomic::Ordering;

/// Exploration depth bound the properties exercise (matches the
/// checker's `REQUIRED_DEPTH` in the verify binary).
const DEPTH: usize = 12;

/// Advances the checker configuration one cycle with the given stall
/// mask (bit *e* stalls edge *e*; only lane 0 is driven).
fn checker_step(cfg: &mut ClosedConfig, mask: u64) {
    for e in 0..cfg.edge_count() {
        cfg.set_stall(e, (mask >> e) & 1);
    }
    cfg.step();
}

/// Builds the simulator twin of the `sp1-scalar`/`sp2-scalar` shapes:
/// scripted adversary source, one input relay, the SP-wrapped join
/// pearl, `relays_after` output relays, scripted adversary sink.
fn sim_twin(
    relays_after: usize,
    schedule: &[u64],
) -> (lis_core::Soc, std::sync::Arc<std::sync::atomic::AtomicU64>) {
    let scripts: Vec<Vec<u64>> = (0..2)
        .map(|e| schedule.iter().map(|m| (m >> e) & 1).collect())
        .collect();
    let mut b = SocBuilder::new();
    b.set_threads(1);
    let vio = b.violations_handle();
    let pearl = JoinPearl::new("join", 1, 1, &vio);
    let policy = Box::new(SpPolicy::from_schedule(pearl.schedule()));
    let ip = b.add_ip_with_policy("sp", Box::new(pearl), policy);

    let stage = b.channel("adv_src", 32);
    b.adversary_feed(
        "src",
        stage,
        StallControl::Scripted(scripts[0].clone()),
        MODULUS,
    );
    b.link(stage, ip.inputs[0], 1);

    let mut tail = ip.outputs[0];
    if relays_after > 0 {
        let out = b.channel("adv_out", 32);
        b.link(tail, out, relays_after);
        tail = out;
    }
    let delivered = b.adversary_capture(
        "snk",
        tail,
        StallControl::Scripted(scripts[1].clone()),
        MODULUS,
    );
    (b.build(), delivered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For every random stall schedule within the depth bound, the
    /// checker configuration and the simulator twin deliver the same
    /// token count on every single cycle, and both finish
    /// violation-free.
    #[test]
    fn checker_and_simulator_agree_cycle_for_cycle(
        relays_after in 0usize..2,
        schedule in prop::collection::vec(0u64..4, 1..=DEPTH),
    ) {
        let name = if relays_after == 0 { "sp1-scalar" } else { "sp2-scalar" };
        let mut cfg = build_config(name).expect("registered config");
        let (mut soc, delivered) = sim_twin(relays_after, &schedule);

        for (cycle, &mask) in schedule.iter().enumerate() {
            checker_step(&mut cfg, mask);
            soc.run(1).expect("simulator twin must converge");
            prop_assert_eq!(
                cfg.delivered(0),
                delivered.load(Ordering::Relaxed),
                "delivery counts diverged at cycle {} of {:?}",
                cycle,
                schedule
            );
        }
        prop_assert_eq!(cfg.violations(0), 0, "checker saw a phantom violation");
        prop_assert_eq!(soc.violations(), 0, "simulator saw a phantom violation");
    }

    /// The checker's KPN ledger is not an abstraction that merely
    /// bounds the simulator — it *is* the simulator's state: after any
    /// schedule, the sink's expected sequence number equals the
    /// delivered count mod MODULUS, the source has emitted at least as
    /// many tokens as arrived, and the in-flight difference respects
    /// the path capacity.
    #[test]
    fn checker_ledger_matches_simulator_deliveries(
        relays_after in 0usize..2,
        schedule in prop::collection::vec(0u64..4, 1..=DEPTH),
    ) {
        let name = if relays_after == 0 { "sp1-scalar" } else { "sp2-scalar" };
        let mut cfg = build_config(name).expect("registered config");
        let (mut soc, delivered) = sim_twin(relays_after, &schedule);

        for &mask in &schedule {
            checker_step(&mut cfg, mask);
        }
        soc.run(schedule.len() as u64).expect("simulator twin must converge");

        let words = cfg.save(0);
        let streams = cfg.stream_state(&words);
        prop_assert_eq!(streams.len(), 1, "scalar shapes carry one stream");
        let (seq, expect) = streams[0];
        let sim_delivered = delivered.load(Ordering::Relaxed);
        prop_assert_eq!(
            expect,
            sim_delivered % MODULUS,
            "sink expectation must count the simulator's deliveries"
        );
        prop_assert_eq!(
            cfg.delivered(0),
            sim_delivered,
            "checker and simulator delivery totals diverged"
        );
        let in_flight = (seq + MODULUS - expect) % MODULUS;
        prop_assert!(
            in_flight <= schedule.len() as u64 + 1,
            "no more tokens in flight than emission cycles: {} after {:?}",
            in_flight,
            schedule
        );
        prop_assert_eq!(cfg.ledger_violation(&words), None);
    }
}

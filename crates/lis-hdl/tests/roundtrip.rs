//! Round-trip tests: Verilog emitted for every wrapper model parses
//! back to a netlist that is structurally identical (same census) and
//! behaviourally identical (same simulation traces) to the original.

use lis_hdl::{emit_verilog, emit_vhdl, parse_verilog};
use lis_netlist::NetlistStats;
use lis_schedule::{random_schedule, RandomScheduleParams, ScheduleBuilder};
use lis_sim::NetlistSim;
use lis_wrappers::{FsmEncoding, WrapperKind};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn all_kinds() -> Vec<WrapperKind> {
    vec![
        WrapperKind::Comb,
        WrapperKind::Fsm(FsmEncoding::OneHot),
        WrapperKind::Fsm(FsmEncoding::Binary),
        WrapperKind::ShiftReg,
        WrapperKind::Sp,
    ]
}

#[test]
fn every_wrapper_kind_round_trips_through_verilog() {
    let schedule = ScheduleBuilder::new(2, 2)
        .read(0)
        .io([1], [0])
        .quiet(9)
        .write(1)
        .build()
        .unwrap();
    for kind in all_kinds() {
        let module = kind.generate_netlist(&schedule).unwrap();
        let text = emit_verilog(&module);
        let parsed = parse_verilog(&text).unwrap_or_else(|e| panic!("{kind}: {e}\n{text}"));
        assert_eq!(
            NetlistStats::of(&parsed),
            NetlistStats::of(&module),
            "{kind}: census changed through the HDL"
        );
        assert_eq!(parsed.inputs.len(), module.inputs.len());
        assert_eq!(parsed.outputs.len(), module.outputs.len());
    }
}

#[test]
fn every_wrapper_kind_emits_vhdl() {
    let schedule = ScheduleBuilder::new(1, 1)
        .read(0)
        .quiet(3)
        .write(0)
        .build()
        .unwrap();
    for kind in all_kinds() {
        let module = kind.generate_netlist(&schedule).unwrap();
        let text = emit_vhdl(&module);
        assert!(
            text.contains(&format!("entity {} is", module.name)),
            "{kind}"
        );
        assert!(text.contains("end architecture rtl;"), "{kind}");
    }
}

/// Simulates a module on a stimulus sequence, sampling all outputs.
fn run(module: &lis_netlist::Module, stimuli: &[Vec<u64>]) -> Vec<Vec<u64>> {
    let mut sim = NetlistSim::new(module.clone()).unwrap();
    let in_names: Vec<String> = module.inputs.iter().map(|p| p.name.clone()).collect();
    let out_names: Vec<String> = module.outputs.iter().map(|p| p.name.clone()).collect();
    let mut results = Vec::new();
    for step in stimuli {
        for (name, &v) in in_names.iter().zip(step) {
            sim.set_input(name, v).unwrap();
        }
        sim.eval();
        results.push(
            out_names
                .iter()
                .map(|n| sim.get_output(n).unwrap())
                .collect(),
        );
        sim.step();
    }
    results
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The parsed-back netlist behaves identically to the original under
    /// random stimuli, for the SP wrapper on random schedules.
    #[test]
    fn sp_verilog_round_trip_is_behaviour_preserving(
        seed in any::<u64>(),
        period in 1usize..50,
        n_cycles in 1usize..60,
    ) {
        let schedule = random_schedule(seed, RandomScheduleParams {
            n_inputs: 2,
            n_outputs: 2,
            period,
            sync_density: 0.4,
            port_density: 0.5,
        });
        let module = WrapperKind::Sp.generate_netlist(&schedule).unwrap();
        let parsed = parse_verilog(&emit_verilog(&module)).unwrap();

        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let stimuli: Vec<Vec<u64>> = (0..n_cycles)
            .map(|_| {
                module
                    .inputs
                    .iter()
                    .map(|p| rng.random::<u64>() & ((1u64 << p.width().min(63)) - 1))
                    .collect()
            })
            .collect();
        prop_assert_eq!(run(&module, &stimuli), run(&parsed, &stimuli));
    }
}

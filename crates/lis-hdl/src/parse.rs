//! A parser for the canonical structural Verilog emitted by
//! [`crate::emit_verilog`], used to prove the emission round-trips.
//!
//! The grammar is exactly the emitter's line-oriented subset — this is
//! not a general Verilog front end, it is the consistency check that the
//! text we hand to a synthesis tool denotes the netlist we synthesized.

use lis_netlist::{Cell, CellKind, Module, Net, NetId, Port, Rom};
use std::collections::HashMap;
use std::fmt;

/// A parse failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "verilog parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Default)]
struct DffInProgress {
    reg: String,
    init: bool,
    rst: Option<String>,
    en: Option<String>,
    d: Option<String>,
}

/// Parses canonical structural Verilog back into a [`Module`].
///
/// # Errors
///
/// Returns a [`ParseError`] for any line outside the canonical subset.
pub fn parse_verilog(text: &str) -> Result<Module, ParseError> {
    let mut module = Module::new("parsed");
    let mut net_ids: HashMap<String, NetId> = HashMap::new();
    let mut input_ports: Vec<(String, usize)> = Vec::new();
    let mut output_ports: Vec<(String, usize)> = Vec::new();
    let mut out_bits: HashMap<String, Vec<Option<NetId>>> = HashMap::new();
    let mut in_bits: HashMap<String, Vec<Option<NetId>>> = HashMap::new();
    let mut dffs: HashMap<String, DffInProgress> = HashMap::new();
    let mut dff_order: Vec<String> = Vec::new();
    let mut roms: HashMap<String, Rom> = HashMap::new();
    let mut rom_order: Vec<String> = Vec::new();
    let mut current_dff: Option<String> = None;

    let err = |line: usize, message: &str| ParseError {
        line,
        message: message.to_owned(),
    };

    let lookup =
        |net_ids: &HashMap<String, NetId>, name: &str, line: usize| -> Result<NetId, ParseError> {
            net_ids
                .get(name)
                .copied()
                .ok_or_else(|| err(line, &format!("unknown net {name}")))
        };

    for (lineno, raw) in text.lines().enumerate() {
        let line_no = lineno + 1;
        let line = raw.trim().trim_end_matches(',');
        if line.is_empty()
            || line.starts_with("//")
            || line.starts_with("module ")
            || line == ");"
            || line == "endmodule"
            || line.starts_with("initial begin")
            || line == "end"
            || line.starts_with("always @")
        {
            continue;
        }

        if let Some(rest) = line.strip_prefix("input wire ") {
            if rest == crate::verilog::CLOCK_PORT {
                continue;
            }
            let (width, name) =
                parse_ranged_name(rest).ok_or_else(|| err(line_no, "bad input declaration"))?;
            in_bits.insert(name.clone(), vec![None; width]);
            input_ports.push((name, width));
            continue;
        }
        if let Some(rest) = line.strip_prefix("output wire ") {
            let (width, name) =
                parse_ranged_name(rest).ok_or_else(|| err(line_no, "bad output declaration"))?;
            out_bits.insert(name.clone(), vec![None; width]);
            output_ports.push((name, width));
            continue;
        }

        if let Some(rest) = line.strip_prefix("wire ") {
            // Either "wire nN;" or ROM helper wires.
            let rest = rest.trim_end_matches(';');
            if let Some(name) = rest.strip_suffix(';') {
                let _ = name;
            }
            if rest.starts_with('[') {
                // ROM address/data helper wires.
                if let Some((lhs, rhs)) = rest.split_once('=') {
                    let lhs_name = lhs.rsplit(' ').find(|s| !s.is_empty()).unwrap_or("").trim();
                    if let Some(rom_name) = lhs_name.strip_suffix("_addr") {
                        // {nMSB, ..., nLSB}
                        let inner = rhs
                            .trim()
                            .trim_start_matches('{')
                            .trim_end_matches('}')
                            .trim();
                        let mut addr: Vec<NetId> = Vec::new();
                        for part in inner.split(',') {
                            addr.push(lookup(&net_ids, part.trim(), line_no)?);
                        }
                        addr.reverse(); // back to LSB-first
                        let rom = roms
                            .get_mut(rom_name)
                            .ok_or_else(|| err(line_no, "addr for unknown rom"))?;
                        rom.addr = addr;
                    }
                    // The _data mux wire carries no structural info.
                    continue;
                }
                return Err(err(line_no, "unrecognized wide wire"));
            }
            let name = rest.trim_end_matches(';');
            let id = NetId::from_index(module.nets.len());
            module.nets.push(Net {
                name: Some(name.to_owned()),
            });
            net_ids.insert(name.to_owned(), id);
            continue;
        }

        if let Some(rest) = line.strip_prefix("reg ") {
            let rest = rest.trim_end_matches(';');
            if rest.starts_with('[') {
                // reg [W-1:0] romK [0:D-1]
                let mut parts = rest.split_whitespace();
                let range = parts.next().ok_or_else(|| err(line_no, "bad rom reg"))?;
                let name = parts.next().ok_or_else(|| err(line_no, "bad rom reg"))?;
                let width =
                    parse_range_width(range).ok_or_else(|| err(line_no, "bad rom width"))?;
                roms.insert(
                    name.to_owned(),
                    Rom {
                        name: name.to_owned(),
                        addr: Vec::new(),
                        data: Vec::new(),
                        contents: Vec::new(),
                    },
                );
                rom_order.push(name.to_owned());
                // Data nets are attached later; remember width via contents
                // capacity (width recovered from data assigns).
                let _ = width;
                continue;
            }
            // reg rC = 1'b0;
            let (name, init) = rest
                .split_once(" = 1'b")
                .ok_or_else(|| err(line_no, "bad reg declaration"))?;
            let dff = DffInProgress {
                reg: name.trim().to_owned(),
                init: init.trim() == "1",
                ..DffInProgress::default()
            };
            dff_order.push(dff.reg.clone());
            current_dff = Some(dff.reg.clone());
            dffs.insert(dff.reg.clone(), dff);
            continue;
        }

        if let Some(rest) = line.strip_prefix("if (") {
            // if (nR) rC <= 1'bX;
            let reg = current_dff
                .clone()
                .ok_or_else(|| err(line_no, "if outside dff block"))?;
            let (cond, _) = rest.split_once(')').ok_or_else(|| err(line_no, "bad if"))?;
            let d = dffs.get_mut(&reg).expect("registered");
            d.rst = Some(cond.trim().to_owned());
            continue;
        }
        if let Some(rest) = line.strip_prefix("else if (") {
            let reg = current_dff
                .clone()
                .ok_or_else(|| err(line_no, "else outside dff block"))?;
            let (cond, tail) = rest
                .split_once(')')
                .ok_or_else(|| err(line_no, "bad else-if"))?;
            let dname = tail
                .trim()
                .strip_prefix(&format!("{reg} <= "))
                .ok_or_else(|| err(line_no, "bad dff data"))?
                .trim_end_matches(';');
            let d = dffs.get_mut(&reg).expect("registered");
            d.en = Some(cond.trim().to_owned());
            d.d = Some(dname.to_owned());
            continue;
        }

        if let Some((lhs, rhs)) = line
            .strip_prefix("assign ")
            .and_then(|r| r.trim_end_matches(';').split_once(" = "))
        {
            let lhs = lhs.trim();
            let rhs = rhs.trim();
            // Output port bit: assign y[0] = n42;
            if let Some((pname, bit)) = parse_indexed(lhs) {
                if let Some(slots) = out_bits.get_mut(pname) {
                    slots[bit] = Some(lookup(&net_ids, rhs, line_no)?);
                    continue;
                }
                return Err(err(line_no, "assign to unknown port"));
            }
            let out = lookup(&net_ids, lhs, line_no)?;
            // Input port bit: assign n3 = ne[0];
            if let Some((pname, bit)) = parse_indexed(rhs) {
                if let Some(slots) = in_bits.get_mut(pname) {
                    slots[bit] = Some(out);
                    continue;
                }
                if let Some(rom_name) = pname.strip_suffix("_data") {
                    let rom = roms
                        .get_mut(rom_name)
                        .ok_or_else(|| err(line_no, "data for unknown rom"))?;
                    if rom.data.len() <= bit {
                        rom.data.resize(bit + 1, out);
                    }
                    rom.data[bit] = out;
                    continue;
                }
                return Err(err(line_no, "read of unknown port"));
            }
            // DFF output: assign n12 = r5;
            if dffs.contains_key(rhs) {
                let d = dffs.get_mut(rhs).expect("checked");
                // Build the cell now that all pins are known.
                let (Some(rst), Some(en), Some(data)) = (d.rst.clone(), d.en.clone(), d.d.clone())
                else {
                    return Err(err(line_no, "incomplete dff"));
                };
                let init = d.init;
                let rst = lookup(&net_ids, &rst, line_no)?;
                let en = lookup(&net_ids, &en, line_no)?;
                let data = lookup(&net_ids, &data, line_no)?;
                module.cells.push(Cell::new(
                    CellKind::Dff { reset_value: init },
                    vec![data, en, rst],
                    out,
                ));
                continue;
            }
            // Gate expressions.
            let kind_cell = parse_expr(rhs, &net_ids, line_no)?;
            match kind_cell {
                Expr::Const(v) => {
                    module
                        .cells
                        .push(Cell::new(CellKind::Const(v), vec![], out));
                }
                Expr::Unary(kind, a) => {
                    module.cells.push(Cell::new(kind, vec![a], out));
                }
                Expr::Binary(kind, a, b) => {
                    module.cells.push(Cell::new(kind, vec![a, b], out));
                }
                Expr::Mux(s, a, b) => {
                    module
                        .cells
                        .push(Cell::new(CellKind::Mux, vec![s, a, b], out));
                }
            }
            continue;
        }

        // ROM contents: romK[i] = 13'd123;
        if let Some((lhs, rhs)) = line.trim_end_matches(';').split_once(" = ") {
            if let Some((name, idx)) = parse_indexed(lhs.trim()) {
                if let Some(rom) = roms.get_mut(name) {
                    let value = rhs
                        .split_once("'d")
                        .and_then(|(_, v)| v.parse::<u64>().ok())
                        .ok_or_else(|| err(line_no, "bad rom word"))?;
                    if rom.contents.len() <= idx {
                        rom.contents.resize(idx + 1, 0);
                    }
                    rom.contents[idx] = value;
                    continue;
                }
            }
        }

        return Err(err(line_no, &format!("unrecognized line: {line}")));
    }

    // Assemble ports.
    for (name, width) in input_ports {
        let slots = &in_bits[&name];
        let bits = (0..width)
            .map(|b| slots[b].ok_or_else(|| err(0, &format!("input {name}[{b}] unbound"))))
            .collect::<Result<Vec<_>, _>>()?;
        module.inputs.push(Port { name, bits });
    }
    for (name, width) in output_ports {
        let slots = &out_bits[&name];
        let bits = (0..width)
            .map(|b| slots[b].ok_or_else(|| err(0, &format!("output {name}[{b}] unbound"))))
            .collect::<Result<Vec<_>, _>>()?;
        module.outputs.push(Port { name, bits });
    }
    for name in rom_order {
        module.roms.push(roms.remove(&name).expect("collected"));
    }

    lis_netlist::validate(&module).map_err(|e| err(0, &format!("invalid netlist: {e}")))?;
    Ok(module)
}

enum Expr {
    Const(bool),
    Unary(CellKind, NetId),
    Binary(CellKind, NetId, NetId),
    Mux(NetId, NetId, NetId),
}

fn parse_expr(rhs: &str, nets: &HashMap<String, NetId>, line: usize) -> Result<Expr, ParseError> {
    let err = |message: String| ParseError { line, message };
    let net = |name: &str| {
        nets.get(name.trim())
            .copied()
            .ok_or_else(|| err(format!("unknown net {name}")))
    };
    if let Some(v) = rhs.strip_prefix("1'b") {
        return Ok(Expr::Const(v == "1"));
    }
    if let Some(inner) = rhs.strip_prefix("~(").and_then(|r| r.strip_suffix(')')) {
        for (op, kind) in [
            (" & ", CellKind::Nand),
            (" | ", CellKind::Nor),
            (" ^ ", CellKind::Xnor),
        ] {
            if let Some((a, b)) = inner.split_once(op) {
                return Ok(Expr::Binary(kind, net(a)?, net(b)?));
            }
        }
        return Err(err(format!("bad inverted expression: {rhs}")));
    }
    if let Some(a) = rhs.strip_prefix('~') {
        return Ok(Expr::Unary(CellKind::Not, net(a)?));
    }
    if let Some((cond, arms)) = rhs.split_once(" ? ") {
        let (then_v, else_v) = arms
            .split_once(" : ")
            .ok_or_else(|| err(format!("bad mux: {rhs}")))?;
        // Emitted as: sel ? input2 : input1 — pin order [sel, a, b].
        return Ok(Expr::Mux(net(cond)?, net(else_v)?, net(then_v)?));
    }
    for (op, kind) in [
        (" & ", CellKind::And),
        (" | ", CellKind::Or),
        (" ^ ", CellKind::Xor),
    ] {
        if let Some((a, b)) = rhs.split_once(op) {
            return Ok(Expr::Binary(kind, net(a)?, net(b)?));
        }
    }
    // Bare net: buffer.
    Ok(Expr::Unary(CellKind::Buf, net(rhs)?))
}

/// "name[3]" → ("name", 3).
fn parse_indexed(s: &str) -> Option<(&str, usize)> {
    let open = s.find('[')?;
    let close = s.find(']')?;
    let idx = s[open + 1..close].parse().ok()?;
    Some((&s[..open], idx))
}

/// "[W-1:0] name" → (W, name).
fn parse_ranged_name(s: &str) -> Option<(usize, String)> {
    let s = s.trim();
    let close = s.find(']')?;
    let hi: usize = s[1..close].split(':').next()?.parse().ok()?;
    let name = s[close + 1..].trim().trim_end_matches(';').to_owned();
    Some((hi + 1, name))
}

/// "[W-1:0]" → W.
fn parse_range_width(s: &str) -> Option<usize> {
    let close = s.find(']')?;
    let hi: usize = s[1..close].split(':').next()?.parse().ok()?;
    Some(hi + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verilog::emit_verilog;
    use lis_netlist::{ModuleBuilder, NetlistStats};

    #[test]
    fn round_trips_a_gate_module() {
        let mut b = ModuleBuilder::new("gates");
        let a = b.input("a", 3);
        let x = b.and(a.bit(0), a.bit(1));
        let y = b.xor(x, a.bit(2));
        let z = b.mux(y, x, a.bit(0));
        let w = b.nor(z, y);
        b.output_bit("out", w);
        let m = b.finish().unwrap();
        let text = emit_verilog(&m);
        let parsed = parse_verilog(&text).expect("parse");
        assert_eq!(NetlistStats::of(&parsed), NetlistStats::of(&m));
    }

    #[test]
    fn parse_rejects_garbage() {
        let e = parse_verilog("  frobnicate the bits;").unwrap_err();
        assert!(e.to_string().contains("unrecognized line"));
    }

    #[test]
    fn parse_error_reports_line_numbers() {
        let text = "// comment\n  wire n0;\n  bogus;\n";
        let e = parse_verilog(text).unwrap_err();
        assert_eq!(e.line, 3);
    }
}

//! Self-checking Verilog testbench generation.
//!
//! Given a module and a stimulus/expectation script (typically captured
//! from the `lis-sim` interpreter), emits a standalone testbench that
//! drives the module's inputs, compares every output each cycle, and
//! reports PASS/FAIL — the artifact that lets a downstream team verify
//! the generated wrapper in their own simulator (Icarus, Verilator,
//! commercial) without this toolchain.

use lis_netlist::Module;
use lis_sim::NetlistSim;
use std::fmt::Write as _;

/// One testbench cycle: input values per input port (module order) and
/// the expected output values per output port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TbCycle {
    /// Input values, one per module input port.
    pub inputs: Vec<u64>,
    /// Expected outputs, one per module output port.
    pub expected: Vec<u64>,
}

/// Runs `stimuli` through the netlist interpreter and records the golden
/// outputs, producing the cycles a testbench needs.
pub fn capture_golden(module: &Module, stimuli: &[Vec<u64>]) -> Vec<TbCycle> {
    let mut sim = NetlistSim::new(module.clone()).expect("module must validate");
    let out_names: Vec<String> = module.outputs.iter().map(|p| p.name.clone()).collect();
    let in_names: Vec<String> = module.inputs.iter().map(|p| p.name.clone()).collect();
    stimuli
        .iter()
        .map(|step| {
            for (name, &v) in in_names.iter().zip(step) {
                sim.set_input(name, v)
                    .expect("port names come from the module");
            }
            sim.eval();
            let expected = out_names
                .iter()
                .map(|n| sim.get_output(n).expect("port names come from the module"))
                .collect();
            sim.step();
            TbCycle {
                inputs: step.clone(),
                expected,
            }
        })
        .collect()
}

/// Emits a self-checking testbench for `module` over the given cycles.
///
/// The testbench instantiates the module (which must come from
/// [`crate::emit_verilog`], hence the implicit `clk`), applies each
/// cycle's inputs, checks every output before the clock edge, counts
/// mismatches, and finishes with `TESTBENCH PASSED`/`FAILED`.
pub fn emit_testbench(module: &Module, cycles: &[TbCycle]) -> String {
    let mut out = String::new();
    let tb = format!("{}_tb", module.name);
    let _ = writeln!(out, "// self-checking testbench for {}", module.name);
    let _ = writeln!(out, "`timescale 1ns/1ps");
    let _ = writeln!(out, "module {tb};");
    let _ = writeln!(out, "  reg clk = 0;");
    for port in &module.inputs {
        let _ = writeln!(out, "  reg [{}:0] {} = 0;", port.width() - 1, port.name);
    }
    for port in &module.outputs {
        let _ = writeln!(out, "  wire [{}:0] {};", port.width() - 1, port.name);
    }
    let _ = writeln!(out, "  integer errors = 0;");
    let _ = writeln!(out);
    let _ = writeln!(out, "  {} dut (", module.name);
    let _ = write!(out, "    .clk(clk)");
    for port in module.inputs.iter().chain(module.outputs.iter()) {
        let _ = write!(out, ",\n    .{0}({0})", port.name);
    }
    let _ = writeln!(out, "\n  );");
    let _ = writeln!(out);
    let _ = writeln!(out, "  always #5 clk = ~clk;");
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "  task check(input [63:0] got, input [63:0] expect_v, input [8*16-1:0] name);"
    );
    let _ = writeln!(out, "    if (got !== expect_v) begin");
    let _ = writeln!(
        out,
        "      $display(\"MISMATCH %0s at %0t: got %0h expected %0h\", name, $time, got, expect_v);"
    );
    let _ = writeln!(out, "      errors = errors + 1;");
    let _ = writeln!(out, "    end");
    let _ = writeln!(out, "  endtask");
    let _ = writeln!(out);
    let _ = writeln!(out, "  initial begin");
    for (t, cycle) in cycles.iter().enumerate() {
        let _ = writeln!(out, "    // cycle {t}");
        for (port, &v) in module.inputs.iter().zip(&cycle.inputs) {
            let _ = writeln!(out, "    {} = {}'d{};", port.name, port.width(), v);
        }
        let _ = writeln!(out, "    #4;"); // settle before the rising edge at #5
        for (port, &v) in module.outputs.iter().zip(&cycle.expected) {
            let _ = writeln!(
                out,
                "    check({}, 64'd{}, \"{}\");",
                port.name, v, port.name
            );
        }
        let _ = writeln!(out, "    #6;"); // through the edge to the next cycle
    }
    let _ = writeln!(out, "    if (errors == 0) $display(\"TESTBENCH PASSED\");");
    let _ = writeln!(
        out,
        "    else $display(\"TESTBENCH FAILED: %0d errors\", errors);"
    );
    let _ = writeln!(out, "    $finish;");
    let _ = writeln!(out, "  end");
    let _ = writeln!(out, "endmodule");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_netlist::ModuleBuilder;

    fn counter_module() -> Module {
        let mut b = ModuleBuilder::new("cnt");
        let en = b.input("en", 1).bit(0);
        let rst = b.input("rst", 1).bit(0);
        let c = b.counter_mod(4, en, rst, 10);
        b.output("count", &c);
        b.finish().unwrap()
    }

    #[test]
    fn golden_capture_matches_interpreter_semantics() {
        let m = counter_module();
        let stimuli: Vec<Vec<u64>> = (0..5).map(|_| vec![1, 0]).collect();
        let cycles = capture_golden(&m, &stimuli);
        let counts: Vec<u64> = cycles.iter().map(|c| c.expected[0]).collect();
        assert_eq!(counts, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn testbench_contains_checks_and_verdict() {
        let m = counter_module();
        let stimuli: Vec<Vec<u64>> = (0..3).map(|_| vec![1, 0]).collect();
        let cycles = capture_golden(&m, &stimuli);
        let tb = emit_testbench(&m, &cycles);
        assert!(tb.contains("module cnt_tb;"));
        assert!(tb.contains("cnt dut ("));
        assert!(tb.contains(".en(en)"));
        assert!(tb.contains("check(count, 64'd2, \"count\");"));
        assert!(tb.contains("TESTBENCH PASSED"));
        assert!(tb.contains("$finish;"));
        assert_eq!(tb.matches("// cycle").count(), 3);
    }
}

//! # lis-hdl — HDL code generation for synchronization wrappers
//!
//! The deliverable of a wrapper-synthesis tool is HDL text. This crate
//! renders any `lis-netlist` [`lis_netlist::Module`] as:
//!
//! * structural **Verilog-2001** ([`emit_verilog`]) in a canonical
//!   line-oriented shape, with a round-trip parser ([`parse_verilog`])
//!   proving the text denotes the synthesized netlist;
//! * **VHDL-93** ([`emit_vhdl`]) — the HDL of the paper's original GAUT
//!   flow.
//!
//! # Examples
//!
//! ```
//! use lis_schedule::ScheduleBuilder;
//! use lis_wrappers::WrapperKind;
//! use lis_hdl::{emit_verilog, parse_verilog};
//! use lis_netlist::NetlistStats;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let schedule = ScheduleBuilder::new(1, 1).read(0).quiet(6).write(0).build()?;
//! let controller = WrapperKind::Sp.generate_netlist(&schedule)?;
//! let verilog = emit_verilog(&controller);
//! let parsed = parse_verilog(&verilog)?;
//! assert_eq!(NetlistStats::of(&parsed), NetlistStats::of(&controller));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod parse;
mod testbench;
mod verilog;
mod vhdl;

pub use parse::{parse_verilog, ParseError};
pub use testbench::{capture_golden, emit_testbench, TbCycle};
pub use verilog::{emit_verilog, CLOCK_PORT};
pub use vhdl::emit_vhdl;

//! Property tests pinning the sharded scheduler to the legacy
//! full-sweep settle on *randomized SoCs*: random pearl pipelines
//! (behavioural and gate-level wrappers), random relay/wire link
//! latencies, serializer/deserializer width conversions, random stall
//! patterns — seeded-random and clock-scheduled periodic — and random
//! thread counts — stepped cycle by cycle with every signal compared
//! after each settle, plus the event-wheel kernel compared at chunk
//! boundaries with jumped spans in between.

use lis_core::SocBuilder;
use lis_proto::{AccumulatorPearl, Deserializer, LisChannel, Serializer, StallPattern};
use lis_sim::SettleMode;
use lis_wrappers::WrapperKind;
use proptest::prelude::*;

/// One random SoC description, buildable repeatedly.
#[derive(Debug, Clone)]
struct SocSpec {
    chains: Vec<ChainSpec>,
}

#[derive(Debug, Clone)]
struct ChainSpec {
    stages: Vec<StageSpec>,
    src_stall: f64,
    sink_stall: f64,
    /// When set, the source stalls on a clock-scheduled `(on, period,
    /// phase)` duty cycle instead of the random probability.
    src_periodic: Option<(u64, u64, u64)>,
    /// As above, for the sink — the pattern that lets the endpoint
    /// declare its wake-up time to the event wheel.
    sink_periodic: Option<(u64, u64, u64)>,
    seed: u64,
    /// Insert a serializer/deserializer width conversion after stage 0.
    serdes: bool,
}

fn pattern_of(random: f64, periodic: Option<(u64, u64, u64)>) -> StallPattern {
    match periodic {
        Some((on, period, phase)) => StallPattern::Periodic { on, period, phase },
        None => StallPattern::from(random),
    }
}

#[derive(Debug, Clone)]
struct StageSpec {
    kind_sel: u8,
    /// Gate-level shell instead of the behavioural wrapper.
    hardware: bool,
    relays: usize,
    extra_wires: usize,
}

fn wrapper_kind(sel: u8) -> WrapperKind {
    match sel % 3 {
        0 => WrapperKind::Sp,
        1 => WrapperKind::Fsm(Default::default()),
        _ => WrapperKind::Comb,
    }
}

fn build(spec: &SocSpec, mode: SettleMode, threads: usize) -> lis_core::Soc {
    let mut b = SocBuilder::new();
    b.set_settle_mode(mode);
    b.set_threads(threads);
    for (c, chain) in spec.chains.iter().enumerate() {
        let mut upstream: Option<LisChannel> = None;
        for (d, stage) in chain.stages.iter().enumerate() {
            let name = format!("p{c}_{d}");
            let pearl = Box::new(AccumulatorPearl::new("acc", 1, 1, 0));
            let kind = wrapper_kind(stage.kind_sel);
            let ip = if stage.hardware {
                b.add_ip_full_netlist(name, pearl, kind)
            } else {
                b.add_ip(name, pearl, kind)
            };
            match upstream {
                None => b.feed(
                    format!("src{c}"),
                    ip.inputs[0],
                    1..=500,
                    pattern_of(chain.src_stall, chain.src_periodic),
                    chain.seed,
                ),
                Some(prev) => {
                    let mut cur = prev;
                    if d == 1 && chain.serdes {
                        // Wide → narrow → wide round trip on the link.
                        let narrow = b.channel(&format!("n{c}_{d}"), 8);
                        let wide = b.channel(&format!("rw{c}_{d}"), 32);
                        let ser = Serializer::new(format!("ser{c}"), cur, narrow);
                        let des = Deserializer::new(format!("des{c}"), narrow, wide);
                        b.system_mut().add_component(ser);
                        b.system_mut().add_component(des);
                        cur = wide;
                    }
                    for w in 0..stage.extra_wires {
                        let next = b.channel(&format!("w{c}_{d}_{w}"), 32);
                        b.link(cur, next, 0);
                        cur = next;
                    }
                    b.link(cur, ip.inputs[0], stage.relays);
                }
            }
            upstream = Some(ip.outputs[0]);
        }
        b.capture(
            format!("out{c}"),
            upstream.expect("at least one stage"),
            pattern_of(chain.sink_stall, chain.sink_periodic),
            chain.seed ^ 0xA5A5,
        );
    }
    b.build()
}

fn stage_strategy() -> impl Strategy<Value = StageSpec> {
    (0u8..3, any::<u8>(), 0usize..3, 0usize..3).prop_map(|(kind_sel, hw, relays, extra_wires)| {
        StageSpec {
            kind_sel,
            // Gate-level shells are the expensive minority.
            hardware: hw < 77,
            relays,
            extra_wires,
        }
    })
}

fn periodic_strategy() -> impl Strategy<Value = Option<(u64, u64, u64)>> {
    // ~35% of endpoints get a scheduled duty cycle: on in 0..6 (0 =
    // permanently stalled), period = on + 1..24 slack, random phase
    // folded into the period (construction rejects phase >= period).
    (any::<u8>(), 0u64..6, 1u64..24, 0u64..32).prop_map(|(sel, on, slack, phase)| {
        (sel < 90).then_some((on, on + slack, phase % (on + slack)))
    })
}

fn chain_strategy() -> impl Strategy<Value = ChainSpec> {
    (
        (
            prop::collection::vec(stage_strategy(), 1..4),
            0.0f64..0.5,
            0.0f64..0.5,
        ),
        (
            periodic_strategy(),
            periodic_strategy(),
            any::<u64>(),
            any::<u8>(),
        ),
    )
        .prop_map(
            |((stages, src_stall, sink_stall), (src_periodic, sink_periodic, seed, serdes))| {
                ChainSpec {
                    stages,
                    src_stall,
                    sink_stall,
                    src_periodic,
                    sink_periodic,
                    seed,
                    serdes: serdes < 77,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The scheduler (at a random thread count) matches the full sweep
    /// cycle for cycle on every signal of a random SoC, and the
    /// delivered streams and violation counts agree.
    #[test]
    fn random_socs_settle_identically(
        chains in prop::collection::vec(chain_strategy(), 1..3),
        threads in 1usize..5,
        cycles in 40u64..120,
    ) {
        let spec = SocSpec { chains };
        let mut reference = build(&spec, SettleMode::FullSweep, 1);
        let mut scheduled = build(&spec, SettleMode::Worklist, threads);
        for cycle in 0..cycles {
            reference.run(1).unwrap();
            scheduled.run(1).unwrap();
            prop_assert_eq!(
                reference.system().signal_values(),
                scheduled.system().signal_values(),
                "signal divergence at cycle {} (threads={})", cycle, threads
            );
        }
        for c in 0..spec.chains.len() {
            let name = format!("out{c}");
            prop_assert_eq!(reference.received(&name), scheduled.received(&name));
        }
        prop_assert_eq!(reference.violations(), scheduled.violations());
    }

    /// The activity-driven kernel — cross-cycle quiescence skipping plus
    /// the sharded selective tick phase — matches BOTH legacy engines
    /// cycle for cycle on every signal of a random SoC (behavioural and
    /// gate-level shells, relays, serdes, random stalls and thread
    /// counts), with identical streams and violation counts. Sources dry
    /// up and sinks stall mid-run, so real quiescence windows are
    /// exercised, not just the steady stream.
    #[test]
    fn activity_driven_socs_settle_identically(
        chains in prop::collection::vec(chain_strategy(), 1..3),
        threads in 1usize..5,
        cycles in 40u64..120,
    ) {
        let spec = SocSpec { chains };
        let mut reference = build(&spec, SettleMode::FullSweep, 1);
        let mut worklist = build(&spec, SettleMode::Worklist, 1);
        let mut activity = build(&spec, SettleMode::ActivityDriven, threads);
        for cycle in 0..cycles {
            reference.run(1).unwrap();
            worklist.run(1).unwrap();
            activity.run(1).unwrap();
            prop_assert_eq!(
                reference.system().signal_values(),
                activity.system().signal_values(),
                "activity vs full-sweep divergence at cycle {} (threads={})", cycle, threads
            );
            prop_assert_eq!(
                worklist.system().signal_values(),
                activity.system().signal_values(),
                "activity vs worklist divergence at cycle {} (threads={})", cycle, threads
            );
        }
        for c in 0..spec.chains.len() {
            let name = format!("out{c}");
            prop_assert_eq!(reference.received(&name), activity.received(&name));
        }
        prop_assert_eq!(reference.violations(), activity.violations());
    }

    /// The event-wheel kernel on random SoCs: run in fixed-size chunks
    /// against cycle-by-cycle activity-driven, comparing the cycle
    /// counter and every signal at each chunk boundary (fast-forward may
    /// have jumped dead spans inside the chunk — the boundary state must
    /// be indistinguishable), then the delivered streams, violation
    /// counts, and the executed-work counters, which must match exactly.
    /// Periodic source/sink schedules make real whole-system quiescence
    /// windows — and thus real jumps — common.
    #[test]
    fn fast_forward_socs_settle_identically(
        chains in prop::collection::vec(chain_strategy(), 1..3),
        threads in 1usize..5,
        chunks in 4u64..12,
        chunk_len in 5u64..16,
    ) {
        let spec = SocSpec { chains };
        let mut activity = build(&spec, SettleMode::ActivityDriven, 1);
        let mut ff = build(&spec, SettleMode::FastForward, threads);
        for chunk in 0..chunks {
            activity.run(chunk_len).unwrap();
            ff.run(chunk_len).unwrap();
            prop_assert_eq!(activity.cycle(), ff.cycle());
            prop_assert_eq!(
                activity.system().signal_values(),
                ff.system().signal_values(),
                "fast-forward divergence after chunk {} (cycle {}, threads={})",
                chunk, ff.cycle(), threads
            );
        }
        for c in 0..spec.chains.len() {
            let name = format!("out{c}");
            prop_assert_eq!(activity.received(&name), ff.received(&name));
        }
        prop_assert_eq!(activity.violations(), ff.violations());
        let ad = activity.scheduler_stats();
        let fs = ff.scheduler_stats();
        prop_assert_eq!(
            (ad.groups_evaluated, ad.components_ticked),
            (fs.groups_evaluated, fs.components_ticked),
            "fast-forward must execute exactly the activity kernel's work"
        );
    }
}

/// The satellite regression: a deliberate combinational `stop` loop
/// with no relay station in it must be reported as a named
/// non-convergence, not simulated into garbage.
#[test]
fn stop_loop_without_relay_station_is_named() {
    use lis_sim::{FnComponent, Ports, SignalView, System};
    let mut sys = System::new();
    let a = LisChannel::new(&mut sys, "a", 8);
    let b = LisChannel::new(&mut sys, "b", 8);
    // Two combinational shells wired head-to-tail: each forwards the
    // other's back-pressure, one inverting — the stop wires oscillate
    // forever. A relay station (registered stop) would break the loop.
    sys.add_component(FnComponent::new(
        "shell_ab",
        Ports::none()
            .merge(a.stop_reads())
            .merge(b.consumer_ports()),
        move |s: &mut SignalView<'_>| {
            let stop = a.read_stop(s);
            b.write_stop(s, !stop);
        },
        |_| {},
    ));
    sys.add_component(FnComponent::new(
        "shell_ba",
        Ports::none()
            .merge(b.stop_reads())
            .merge(a.consumer_ports()),
        move |s: &mut SignalView<'_>| {
            let stop = b.read_stop(s);
            a.write_stop(s, stop);
        },
        |_| {},
    ));
    let err = sys.settle().unwrap_err();
    match &err {
        lis_sim::SimError::NoConvergence {
            components, cycle, ..
        } => {
            assert_eq!(*cycle, 0);
            assert_eq!(components, &["shell_ab", "shell_ba"]);
        }
        other => panic!("expected NoConvergence, got {other:?}"),
    }
    assert!(
        err.to_string().contains("shell_ab, shell_ba"),
        "error must name the loop: {err}"
    );
}

//! Regression test for the fleet checkpoint/restore seam through the
//! vendored serde: a mid-run [`lis_core::FleetCheckpoint`] must survive
//! JSON serialization — standing in for a process restart — and resume
//! bit-identically to an uninterrupted twin.

use lis_core::{FleetBatch, FleetBuilder, FleetCheckpoint, SocFleet};
use lis_proto::{Pearl, StallPattern};
use lis_sim::WorkStealingPool;
use lis_wrappers::WrapperKind;

/// A 3-lane, two-IP gate-level fleet batch: packed shells, a packed
/// relay link between the IPs, and per-lane seeds/stalls.
fn build_batch() -> FleetBatch {
    let lanes = 3;
    let pearls = |n_in: usize| -> Vec<Box<dyn Pearl>> {
        (0..lanes)
            .map(|_| {
                Box::new(lis_proto::AccumulatorPearl::new("acc", n_in, 1, 2)) as Box<dyn Pearl>
            })
            .collect()
    };
    let mut b = FleetBuilder::new(lanes);
    b.set_threads(1);
    let first = b.add_ip_full_netlist("first", pearls(1), WrapperKind::Sp);
    let second = b.add_ip_full_netlist("second", pearls(1), WrapperKind::Sp);
    b.link(&first.outputs[0], &second.inputs[0], 2);
    b.feed("src", &first.inputs[0], |lane| {
        (
            (1..=40u64).map(|v| v * (lane as u64 + 2)).collect(),
            StallPattern::from([0.0, 0.3, 0.15][lane]),
            500 + lane as u64,
        )
    });
    b.capture("out", &second.outputs[0], |lane| {
        (StallPattern::from([0.2, 0.0, 0.4][lane]), 600 + lane as u64)
    });
    b.build()
}

#[test]
fn fleet_checkpoint_survives_serde_round_trip() {
    let pool = WorkStealingPool::new(1);

    // Uninterrupted reference: 400 cycles straight through.
    let mut reference = SocFleet::new(vec![build_batch()]);
    reference.run(400, &pool).unwrap();

    // Interrupted run: snapshot mid-flight at 150 cycles, while tokens
    // are buffered in relays and the packed shells are mid-schedule.
    let mut first = SocFleet::new(vec![build_batch()]);
    first.run(150, &pool).unwrap();
    let snap = first.checkpoint();

    // Round-trip the checkpoint through JSON, as a process restart
    // would: the restored value must be structurally identical.
    let json = serde_json::to_string(&snap).expect("checkpoint serializes");
    let restored: FleetCheckpoint = serde_json::from_str(&json).expect("checkpoint deserializes");
    assert_eq!(restored, snap, "JSON round-trip altered the checkpoint");

    // Resume a freshly built fleet from the deserialized image and run
    // the remaining 250 cycles.
    let mut resumed = SocFleet::new(vec![build_batch()]);
    resumed.restore(&restored);
    assert_eq!(resumed.cycle(), 150, "restore must recover the cycle");
    resumed.run(250, &pool).unwrap();

    // Bit-identity bar: streams and violation counts match the
    // uninterrupted twin on every lane.
    for lane in 0..3 {
        assert_eq!(
            resumed.received("out", lane),
            reference.received("out", lane),
            "lane {lane} stream diverged after the serde round-trip"
        );
        assert_eq!(
            resumed.violations(lane),
            reference.violations(lane),
            "lane {lane} violations diverged"
        );
    }
    assert!(
        !reference.received("out", 0).is_empty(),
        "the reference run must actually deliver tokens"
    );
}

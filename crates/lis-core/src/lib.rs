//! # lis-core — the top-level API of the LIS wrapper-synthesis suite
//!
//! Ties the substrate crates together:
//!
//! * [`SocBuilder`] / [`Soc`] — assemble patient processes (behavioural
//!   or gate-level controlled), relay-station links, sources and sinks
//!   into a runnable latency-insensitive system;
//! * [`synthesize_wrapper`] — schedule → wrapper controller → FPGA
//!   area/timing report, for all four wrapper models;
//! * [`experiment`] — one driver per table/figure of Bomel et al.
//!   (DATE 2005): [`experiment::table1`], [`experiment::figures`], the
//!   scaling/throughput/ablation sweeps.
//!
//! # Examples
//!
//! ```
//! use lis_core::{SocBuilder};
//! use lis_proto::AccumulatorPearl;
//! use lis_wrappers::WrapperKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SocBuilder::new();
//! let ip = b.add_ip(
//!     "acc",
//!     Box::new(AccumulatorPearl::new("acc", 1, 1, 2)),
//!     WrapperKind::Sp,
//! );
//! b.feed("src", ip.inputs[0], 1..=5, 0.0, 1);
//! b.capture("out", ip.outputs[0], 0.0, 2);
//! let mut soc = b.build();
//! soc.run(60)?;
//! assert_eq!(soc.received("out"), vec![1, 3, 6, 10, 15]);
//! assert_eq!(soc.violations(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiment;
mod fleet;
mod flow;
mod soc;

pub use fleet::{FleetBatch, FleetBuilder, FleetCheckpoint, FleetIpHandle, SocFleet};
pub use flow::{synthesize_full_wrapper, synthesize_wrapper, SpCompression, WrapperSynthesis};
pub use soc::{IpHandle, Soc, SocBuilder};

//! The wrapper synthesis flow: schedule → controller netlist → area and
//! timing reports, for any wrapper model.

use lis_schedule::{compress, compress_bursty, uncompressed, IoSchedule, SpProgram};
use lis_synth::{synthesize, SynthReport, TechParams};
use lis_wrappers::{assemble_full_wrapper, generate_sp, WrapperKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How to compile a schedule into a synchronization-processor program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpCompression {
    /// One operation per I/O cycle ([`compress`]) — always safe.
    #[default]
    Safe,
    /// Burst operations ([`compress_bursty`]) — one synchronization per
    /// I/O phase, streaming through runs; the paper's Viterbi setup.
    Burst,
    /// No compression ([`uncompressed`]) — one ROM word per schedule
    /// cycle, run counters pinned to 1. The E6 ablation baseline: same
    /// processor datapath, but the operations memory grows linearly with
    /// schedule length.
    Uncompressed,
}

impl SpCompression {
    /// Compiles `schedule` into an SP program under this compression.
    pub fn compile(self, schedule: &IoSchedule) -> SpProgram {
        match self {
            SpCompression::Safe => compress(schedule),
            SpCompression::Burst => compress_bursty(schedule),
            SpCompression::Uncompressed => uncompressed(schedule),
        }
    }
}

/// Synthesis results for one wrapper implementation of one schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WrapperSynthesis {
    /// Wrapper model name ("sp", "fsm-onehot", …).
    pub model: String,
    /// Full synthesis report of the controller netlist.
    pub report: SynthReport,
    /// SP program length (ROM words), when applicable.
    pub sp_ops: Option<usize>,
}

impl fmt::Display for WrapperSynthesis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:12} {}", self.model, self.report)
    }
}

/// Synthesizes the wrapper controller of `kind` for `schedule`.
///
/// For [`WrapperKind::Sp`], `compression` picks the program style.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn synthesize_wrapper(
    kind: WrapperKind,
    schedule: &IoSchedule,
    compression: SpCompression,
    params: &TechParams,
) -> Result<WrapperSynthesis, lis_netlist::NetlistError> {
    let (module, sp_ops) = match kind {
        WrapperKind::Sp => {
            let program = compression.compile(schedule);
            let ops = program.len();
            (generate_sp(&program)?, Some(ops))
        }
        other => (other.generate_netlist(schedule)?, None),
    };
    Ok(WrapperSynthesis {
        model: kind.to_string(),
        report: synthesize(&module, params)?,
        sp_ops,
    })
}

/// Synthesizes the *complete* wrapper — controller plus one gate-level
/// FIFO per port — as the paper's figures draw it. `in_widths` /
/// `out_widths` give the data width of each pearl port.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn synthesize_full_wrapper(
    kind: WrapperKind,
    schedule: &IoSchedule,
    compression: SpCompression,
    in_widths: &[usize],
    out_widths: &[usize],
    params: &TechParams,
) -> Result<WrapperSynthesis, lis_netlist::NetlistError> {
    let (controller, sp_ops) = match kind {
        WrapperKind::Sp => {
            let program = compression.compile(schedule);
            let ops = program.len();
            (generate_sp(&program)?, Some(ops))
        }
        other => (other.generate_netlist(schedule)?, None),
    };
    let full = assemble_full_wrapper(&controller, in_widths, out_widths)?;
    Ok(WrapperSynthesis {
        model: format!("{kind}+ports"),
        report: synthesize(&full, params)?,
        sp_ops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_schedule::ScheduleBuilder;

    fn schedule() -> IoSchedule {
        ScheduleBuilder::new(2, 1)
            .read(0)
            .repeat_io([1], [], 20)
            .quiet(20)
            .write(0)
            .build()
            .unwrap()
    }

    #[test]
    fn sp_burst_uses_fewer_rom_words_than_safe() {
        let p = TechParams::default();
        let safe =
            synthesize_wrapper(WrapperKind::Sp, &schedule(), SpCompression::Safe, &p).unwrap();
        let burst =
            synthesize_wrapper(WrapperKind::Sp, &schedule(), SpCompression::Burst, &p).unwrap();
        assert!(burst.sp_ops.unwrap() < safe.sp_ops.unwrap());
        assert_eq!(burst.sp_ops.unwrap(), 3);
    }

    #[test]
    fn uncompressed_sp_stores_the_whole_period() {
        // Quiet-heavy schedule — the regime run-counter compression
        // exists for. (Dense-I/O schedules like RS compress ~1:1, and
        // their verbatim words are even narrower: run field shrinks.)
        let p = TechParams::default();
        let s = ScheduleBuilder::new(2, 1)
            .read(0)
            .read(1)
            .quiet(60)
            .write(0)
            .build()
            .unwrap();
        let safe = synthesize_wrapper(WrapperKind::Sp, &s, SpCompression::Safe, &p).unwrap();
        let verbatim =
            synthesize_wrapper(WrapperKind::Sp, &s, SpCompression::Uncompressed, &p).unwrap();
        assert_eq!(verbatim.sp_ops.unwrap(), s.period());
        assert!(verbatim.sp_ops.unwrap() > safe.sp_ops.unwrap());
        let rom =
            |w: &WrapperSynthesis| w.report.area.rom_bits_bram + w.report.area.rom_bits_lutram;
        assert!(
            rom(&verbatim) > rom(&safe),
            "verbatim ROM {} must exceed compressed ROM {}",
            rom(&verbatim),
            rom(&safe)
        );
    }

    #[test]
    fn fsm_wrapper_overtakes_sp_as_schedules_grow() {
        // On a tiny schedule the SP's counters/ROM overhead can exceed a
        // small FSM — the paper's claim is about *long* schedules, where
        // FSM area keeps growing while the SP stays flat.
        let p = TechParams::default();
        let long_schedule = ScheduleBuilder::new(2, 1)
            .read(0)
            .repeat_io([1], [], 400)
            .quiet(400)
            .write(0)
            .build()
            .unwrap();
        let sp =
            synthesize_wrapper(WrapperKind::Sp, &long_schedule, SpCompression::Safe, &p).unwrap();
        let fsm = synthesize_wrapper(
            WrapperKind::Fsm(Default::default()),
            &long_schedule,
            SpCompression::Safe,
            &p,
        )
        .unwrap();
        assert!(
            fsm.report.area.slices > 3 * sp.report.area.slices,
            "fsm={} sp={}",
            fsm.report.area.slices,
            sp.report.area.slices
        );
        assert!(fsm.sp_ops.is_none());
    }

    #[test]
    fn full_wrapper_adds_port_hardware() {
        let p = TechParams::default();
        let controller_only =
            synthesize_wrapper(WrapperKind::Sp, &schedule(), SpCompression::Safe, &p).unwrap();
        let full = synthesize_full_wrapper(
            WrapperKind::Sp,
            &schedule(),
            SpCompression::Safe,
            &[8, 16],
            &[32],
            &p,
        )
        .unwrap();
        assert!(full.report.area.slices > controller_only.report.area.slices);
        assert!(full.report.area.ffs >= 2 * (8 + 16 + 32));
        assert!(full.model.contains("+ports"));
    }

    #[test]
    fn display_includes_model_name() {
        let p = TechParams::default();
        let sp = synthesize_wrapper(WrapperKind::Sp, &schedule(), SpCompression::Safe, &p).unwrap();
        assert!(sp.to_string().contains("sp"));
    }
}

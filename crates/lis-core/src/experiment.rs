//! Experiment drivers: one function per table/figure of the paper plus
//! the claim-driven sweeps (see DESIGN.md §4 for the index).

use crate::flow::{synthesize_wrapper, SpCompression, WrapperSynthesis};
use crate::soc::SocBuilder;
use lis_ip::{RsPearl, ViterbiPearl};
use lis_proto::{AccumulatorPearl, Pearl};
use lis_schedule::{compress, compress_bursty, random_schedule, IoSchedule, RandomScheduleParams};
use lis_synth::TechParams;
use lis_wrappers::{FsmEncoding, WrapperKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Reference values from the paper's Table 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PaperRow {
    /// FSM slices.
    pub fsm_slices: usize,
    /// FSM frequency (MHz).
    pub fsm_mhz: f64,
    /// SP slices.
    pub sp_slices: usize,
    /// SP frequency (MHz).
    pub sp_mhz: f64,
}

/// The paper's Viterbi row: FSM 494 slices / 105 MHz, SP 24 / 105.
pub const PAPER_VITERBI: PaperRow = PaperRow {
    fsm_slices: 494,
    fsm_mhz: 105.0,
    sp_slices: 24,
    sp_mhz: 105.0,
};

/// The paper's RS row: FSM 2610 slices / 71 MHz, SP 24 / 105.
pub const PAPER_RS: PaperRow = PaperRow {
    fsm_slices: 2610,
    fsm_mhz: 71.0,
    sp_slices: 24,
    sp_mhz: 105.0,
};

/// One reproduced row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// IP name.
    pub ip: String,
    /// Port count (paper column "Port").
    pub ports: usize,
    /// Synchronization operations (paper column "wait").
    pub waits: usize,
    /// Largest run count (paper column "run").
    pub max_run: u32,
    /// Our FSM synthesis.
    pub fsm: WrapperSynthesis,
    /// Our SP synthesis.
    pub sp: WrapperSynthesis,
    /// Paper reference numbers.
    pub paper: PaperRow,
}

impl Table1Row {
    /// Area gain in percent ((sp − fsm)/fsm × 100; negative = saved).
    pub fn slice_gain_pct(&self) -> f64 {
        let fsm = self.fsm.report.area.slices as f64;
        let sp = self.sp.report.area.slices as f64;
        (sp - fsm) / fsm * 100.0
    }

    /// Frequency gain in percent.
    pub fn freq_gain_pct(&self) -> f64 {
        let fsm = self.fsm.report.timing.fmax_mhz;
        let sp = self.sp.report.timing.fmax_mhz;
        (sp - fsm) / fsm * 100.0
    }

    /// The paper's area gain for this row.
    pub fn paper_slice_gain_pct(&self) -> f64 {
        (self.paper.sp_slices as f64 - self.paper.fsm_slices as f64) / self.paper.fsm_slices as f64
            * 100.0
    }

    /// The paper's frequency gain for this row.
    pub fn paper_freq_gain_pct(&self) -> f64 {
        (self.paper.sp_mhz - self.paper.fsm_mhz) / self.paper.fsm_mhz * 100.0
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:8} {}/{}/{:<4}  FSM: {:5} sli {:6.1} MHz | SP: {:4} sli {:6.1} MHz | gain {:+6.1}% sli {:+6.1}% MHz (paper {:+.1}% / {:+.1}%)",
            self.ip,
            self.ports,
            self.waits,
            self.max_run,
            self.fsm.report.area.slices,
            self.fsm.report.timing.fmax_mhz,
            self.sp.report.area.slices,
            self.sp.report.timing.fmax_mhz,
            self.slice_gain_pct(),
            self.freq_gain_pct(),
            self.paper_slice_gain_pct(),
            self.paper_freq_gain_pct(),
        )
    }
}

/// Reproduces Table 1: FSM vs SP synthesis of the Viterbi and RS wrapper
/// controllers.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn table1(params: &TechParams) -> Result<Vec<Table1Row>, lis_netlist::NetlistError> {
    let mut rows = Vec::new();

    // Viterbi: 5 ports, burst program (4 ops, run up to 198).
    let viterbi = ViterbiPearl::new("viterbi");
    let schedule = viterbi.schedule().clone();
    let program = compress_bursty(&schedule);
    rows.push(Table1Row {
        ip: "Viterbi".to_owned(),
        ports: 5,
        waits: program.len(),
        max_run: program.max_run(),
        fsm: synthesize_wrapper(
            WrapperKind::Fsm(FsmEncoding::OneHot),
            &schedule,
            SpCompression::Safe,
            params,
        )?,
        sp: synthesize_wrapper(WrapperKind::Sp, &schedule, SpCompression::Burst, params)?,
        paper: PAPER_VITERBI,
    });

    // RS: 4 ports, safe program (one op per cycle, run 1).
    let rs = RsPearl::new("rs");
    let schedule = rs.schedule().clone();
    let program = compress(&schedule);
    rows.push(Table1Row {
        ip: "RS".to_owned(),
        ports: 4,
        waits: program.len(),
        max_run: program.max_run(),
        fsm: synthesize_wrapper(
            WrapperKind::Fsm(FsmEncoding::OneHot),
            &schedule,
            SpCompression::Safe,
            params,
        )?,
        sp: synthesize_wrapper(WrapperKind::Sp, &schedule, SpCompression::Safe, params)?,
        paper: PAPER_RS,
    });

    Ok(rows)
}

/// One point of the scaling sweep (experiment E3/E4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Swept quantity value (schedule cycles for E3, ports for E4).
    pub x: usize,
    /// Wrapper model.
    pub model: String,
    /// Occupied slices.
    pub slices: usize,
    /// Maximum frequency.
    pub fmax_mhz: f64,
    /// ROM bits (schedule storage — grows for the SP while logic stays
    /// flat).
    pub rom_bits: usize,
}

impl fmt::Display for ScalingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "x={:6} {:12} {:6} slices {:7.1} MHz {:8} ROM bits",
            self.x, self.model, self.slices, self.fmax_mhz, self.rom_bits
        )
    }
}

fn sweep_schedule(period: usize, n_inputs: usize, n_outputs: usize) -> IoSchedule {
    random_schedule(
        0xC0FFEE ^ period as u64 ^ ((n_inputs as u64) << 32),
        RandomScheduleParams {
            n_inputs,
            n_outputs,
            period,
            sync_density: 0.3,
            port_density: 0.5,
        },
    )
}

/// E3: area/fmax vs schedule length at fixed port count.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn scaling_by_length(
    periods: &[usize],
    params: &TechParams,
) -> Result<Vec<ScalingRow>, lis_netlist::NetlistError> {
    let mut rows = Vec::new();
    for &period in periods {
        let schedule = sweep_schedule(period, 2, 2);
        for kind in [
            WrapperKind::Comb,
            WrapperKind::Fsm(FsmEncoding::OneHot),
            WrapperKind::ShiftReg,
            WrapperKind::Sp,
        ] {
            let w = synthesize_wrapper(kind, &schedule, SpCompression::Safe, params)?;
            rows.push(ScalingRow {
                x: period,
                model: w.model.clone(),
                slices: w.report.area.slices,
                fmax_mhz: w.report.timing.fmax_mhz,
                rom_bits: w.report.area.rom_bits_bram + w.report.area.rom_bits_lutram,
            });
        }
    }
    Ok(rows)
}

/// E4: area/fmax vs port count at fixed schedule length.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn scaling_by_ports(
    port_counts: &[usize],
    params: &TechParams,
) -> Result<Vec<ScalingRow>, lis_netlist::NetlistError> {
    let mut rows = Vec::new();
    for &ports in port_counts {
        let n_in = ports.div_ceil(2);
        let n_out = ports / 2;
        let schedule = sweep_schedule(64, n_in, n_out.max(1));
        for kind in [
            WrapperKind::Comb,
            WrapperKind::Fsm(FsmEncoding::OneHot),
            WrapperKind::Sp,
        ] {
            let w = synthesize_wrapper(kind, &schedule, SpCompression::Safe, params)?;
            rows.push(ScalingRow {
                x: ports,
                model: w.model.clone(),
                slices: w.report.area.slices,
                fmax_mhz: w.report.timing.fmax_mhz,
                rom_bits: w.report.area.rom_bits_bram + w.report.area.rom_bits_lutram,
            });
        }
    }
    Ok(rows)
}

/// One point of the throughput experiment (E5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Wrapper model.
    pub model: String,
    /// Relay stations on each link.
    pub latency: usize,
    /// Source/sink stall probability.
    pub stall: f64,
    /// Informative tokens delivered per cycle.
    pub tokens_per_cycle: f64,
    /// Whether the informative stream matched the zero-latency reference.
    pub stream_intact: bool,
    /// Protocol violations observed.
    pub violations: u64,
}

impl fmt::Display for ThroughputRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:12} latency={} stall={:.2}: {:.4} tok/cyc, intact={}, violations={}",
            self.model,
            self.latency,
            self.stall,
            self.tokens_per_cycle,
            self.stream_intact,
            self.violations
        )
    }
}

/// E5: throughput and correctness of a relayed accumulator pipeline
/// under every wrapper model, across link latencies and stall rates.
pub fn throughput_sweep(latencies: &[usize], stalls: &[f64], cycles: u64) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    let kinds = [
        WrapperKind::Comb,
        WrapperKind::Fsm(FsmEncoding::OneHot),
        WrapperKind::Sp,
    ];
    // Reference stream: what the pearl computes on ideal channels.
    let reference: Vec<u64> = (1..=u64::MAX)
        .scan(0u64, |acc, v| {
            *acc = acc.wrapping_add(v);
            Some(*acc)
        })
        .take(100_000)
        .collect();

    for kind in kinds {
        for &latency in latencies {
            for &stall in stalls {
                let mut b = SocBuilder::new();
                let ip = b.add_ip("acc", Box::new(AccumulatorPearl::new("acc", 1, 1, 0)), kind);
                let stage = b.channel("stage", 32);
                b.feed("src", stage, 1..=1_000_000, stall, 17);
                b.link(stage, ip.inputs[0], latency);
                let out_stage = b.channel("out_stage", 32);
                b.link(ip.outputs[0], out_stage, latency);
                b.capture("out", out_stage, stall, 23);
                let mut soc = b.build();
                soc.run(cycles).expect("simulation");
                let got = soc.received("out");
                let intact = got.len() <= reference.len() && got[..] == reference[..got.len()];
                rows.push(ThroughputRow {
                    model: kind.to_string(),
                    latency,
                    stall,
                    tokens_per_cycle: got.len() as f64 / cycles as f64,
                    stream_intact: intact,
                    violations: soc.violations(),
                });
            }
        }
    }
    rows
}

/// One row of the ablation study (E6): FSM encodings and the static
/// wrapper's failure under irregular streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// What was varied.
    pub variant: String,
    /// Slices (synthesis ablations) — 0 for behavioural rows.
    pub slices: usize,
    /// fmax (synthesis ablations) — 0 for behavioural rows.
    pub fmax_mhz: f64,
    /// Stall probability injected (behavioural rows).
    pub stall: f64,
    /// Whether the output stream was correct.
    pub stream_intact: bool,
    /// Protocol violations.
    pub violations: u64,
}

impl fmt::Display for AblationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.slices > 0 {
            write!(
                f,
                "{:24} {:6} slices {:7.1} MHz",
                self.variant, self.slices, self.fmax_mhz
            )
        } else {
            write!(
                f,
                "{:24} stall={:.2} intact={} violations={}",
                self.variant, self.stall, self.stream_intact, self.violations
            )
        }
    }
}

/// E6: design ablations — one-hot vs binary FSM encoding on the Table 1
/// schedules, and shift-register correctness vs stream irregularity.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn ablation(params: &TechParams) -> Result<Vec<AblationRow>, lis_netlist::NetlistError> {
    let mut rows = Vec::new();

    let viterbi = ViterbiPearl::new("v");
    for (label, enc) in [
        ("viterbi fsm one-hot", FsmEncoding::OneHot),
        ("viterbi fsm binary", FsmEncoding::Binary),
    ] {
        let w = synthesize_wrapper(
            WrapperKind::Fsm(enc),
            viterbi.schedule(),
            SpCompression::Safe,
            params,
        )?;
        rows.push(AblationRow {
            variant: label.to_owned(),
            slices: w.report.area.slices,
            fmax_mhz: w.report.timing.fmax_mhz,
            stall: 0.0,
            stream_intact: true,
            violations: 0,
        });
    }

    // Fabric generation: does the SP still win on a modern 6-LUT
    // device? (The paper's claim is structural, so it should.)
    let rs = RsPearl::new("r");
    for (label, p) in [
        ("rs sp  on 6-LUT fabric", TechParams::modern_6lut()),
        ("rs fsm on 6-LUT fabric", TechParams::modern_6lut()),
    ] {
        let kind = if label.contains("sp") {
            WrapperKind::Sp
        } else {
            WrapperKind::Fsm(FsmEncoding::OneHot)
        };
        let w = synthesize_wrapper(kind, rs.schedule(), SpCompression::Safe, &p)?;
        rows.push(AblationRow {
            variant: label.to_owned(),
            slices: w.report.area.slices,
            fmax_mhz: w.report.timing.fmax_mhz,
            stall: 0.0,
            stream_intact: true,
            violations: 0,
        });
    }

    // Shift-register wrapper: correct only without irregularity. The
    // Casu-style pattern (one warm-up slot, then streaming at 3/4 rate)
    // is rate-matched to an ideal source; a source stalling beyond the
    // slack the 2-deep port queues provide starves the fixed schedule.
    for stall in [0.0, 0.2, 0.5, 0.7] {
        let mut b = SocBuilder::new();
        let pearl = AccumulatorPearl::new("acc", 1, 1, 0);
        let policy = Box::new(lis_wrappers::ShiftRegPolicy::with_pattern(
            pearl.schedule().clone(),
            vec![false, true, true, true],
        ));
        let ip = b.add_ip_with_policy("acc", Box::new(pearl), policy);
        // Feed more tokens than the static schedule can consume in the
        // run: a static wrapper has no way to stop at end-of-stream, so
        // the experiment must not starve it artificially.
        b.feed("src", ip.inputs[0], 1..=1000, stall, 31);
        b.capture("out", ip.outputs[0], 0.0, 32);
        let mut soc = b.build();
        soc.run(700).expect("simulation");
        let got = soc.received("out");
        let reference: Vec<u64> = (1..=1000u64)
            .scan(0u64, |acc, v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        let intact =
            !got.is_empty() && got.len() <= reference.len() && got[..] == reference[..got.len()];
        rows.push(AblationRow {
            variant: "shiftreg stream".to_owned(),
            slices: 0,
            fmax_mhz: 0.0,
            stall,
            stream_intact: intact && soc.violations() == 0,
            violations: soc.violations(),
        });
    }
    Ok(rows)
}

/// Structural inventory of the two figure architectures (F1/F2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Which figure ("Figure 1" / "Figure 2").
    pub figure: String,
    /// Wrapper model depicted.
    pub model: String,
    /// Interface ports of the generated controller (name, width, dir).
    pub interface: Vec<(String, usize, String)>,
    /// Netlist census.
    pub stats: String,
    /// ROM geometry, when present (words × width).
    pub rom: Option<(usize, usize)>,
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {} wrapper", self.figure, self.model)?;
        for (name, width, dir) in &self.interface {
            writeln!(f, "    {dir:6} {name:10} [{width} bit]")?;
        }
        if let Some((words, width)) = self.rom {
            writeln!(f, "    operations memory: {words} words × {width} bits")?;
        }
        writeln!(f, "    {}", self.stats)
    }
}

/// F1/F2: regenerate the structural content of the paper's two figures
/// from the actual generators.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn figures() -> Result<Vec<FigureReport>, lis_netlist::NetlistError> {
    let viterbi = ViterbiPearl::new("v");
    let schedule = viterbi.schedule();

    let mut out = Vec::new();
    for (figure, kind, compression) in [
        ("Figure 1", WrapperKind::Comb, SpCompression::Safe),
        ("Figure 2", WrapperKind::Sp, SpCompression::Burst),
    ] {
        let module = match (kind, compression) {
            (WrapperKind::Sp, SpCompression::Burst) => {
                lis_wrappers::generate_sp(&compress_bursty(schedule))?
            }
            _ => kind.generate_netlist(schedule)?,
        };
        let interface: Vec<(String, usize, String)> = module
            .inputs
            .iter()
            .map(|p| (p.name.clone(), p.width(), "input".to_owned()))
            .chain(
                module
                    .outputs
                    .iter()
                    .map(|p| (p.name.clone(), p.width(), "output".to_owned())),
            )
            .collect();
        let rom = module
            .roms
            .first()
            .map(|r| (r.contents.len(), r.data.len()));
        out.push(FigureReport {
            figure: figure.to_owned(),
            model: kind.to_string(),
            interface,
            stats: lis_netlist::NetlistStats::of(&module).to_string(),
            rom,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_paper_shape() {
        let rows = table1(&TechParams::default()).unwrap();
        assert_eq!(rows.len(), 2);
        let viterbi = &rows[0];
        let rs = &rows[1];

        // Column "Port/wait/run" matches the paper (RS waits off by one:
        // ours synchronizes on the marker cycle too).
        assert_eq!(viterbi.ports, 5);
        assert_eq!(viterbi.waits, 4);
        assert_eq!(viterbi.max_run, 198);
        assert_eq!(rs.ports, 4);
        assert!((2956..=2958).contains(&rs.waits));
        assert_eq!(rs.max_run, 1);

        // Shape: SP beats the FSM on area for both IPs; decisively for RS.
        assert!(viterbi.slice_gain_pct() < -50.0, "{viterbi}");
        assert!(rs.slice_gain_pct() < -90.0, "{rs}");

        // Shape: SP area is (nearly) the same for both IPs — independent
        // of schedule length.
        let s1 = viterbi.sp.report.area.slices as f64;
        let s2 = rs.sp.report.area.slices as f64;
        assert!(
            (s1 - s2).abs() / s1.max(s2) < 0.5,
            "SP slices must be schedule-independent: {s1} vs {s2}"
        );

        // Shape: the RS FSM is slower than the SP; the Viterbi FSM is
        // within ~15% of the SP (paper: exactly equal).
        assert!(rs.freq_gain_pct() > 10.0, "{rs}");
        assert!(viterbi.freq_gain_pct().abs() < 25.0, "{viterbi}");

        // The FSM for RS is much bigger than for Viterbi (2958 vs 202
        // states).
        assert!(rs.fsm.report.area.slices > 3 * viterbi.fsm.report.area.slices);
    }

    #[test]
    fn scaling_by_length_shows_flat_sp() {
        let rows = scaling_by_length(&[32, 256, 1024], &TechParams::default()).unwrap();
        let slices_of = |model: &str, x: usize| {
            rows.iter()
                .find(|r| r.model == model && r.x == x)
                .map(|r| r.slices)
                .unwrap()
        };
        let sp_growth = slices_of("sp", 1024) as f64 / slices_of("sp", 32).max(1) as f64;
        let fsm_growth =
            slices_of("fsm-onehot", 1024) as f64 / slices_of("fsm-onehot", 32).max(1) as f64;
        assert!(
            fsm_growth > 6.0 * sp_growth,
            "fsm×{fsm_growth:.1} vs sp×{sp_growth:.1}"
        );
    }

    #[test]
    fn throughput_sweep_streams_stay_intact_for_protocol_wrappers() {
        let rows = throughput_sweep(&[0, 3], &[0.0, 0.3], 1500);
        for row in &rows {
            assert!(row.stream_intact, "{row}");
            assert_eq!(row.violations, 0, "{row}");
            assert!(row.tokens_per_cycle > 0.0, "{row}");
        }
        // Latency reduces or maintains throughput, never corrupts.
        let tp = |model: &str, lat: usize, stall: f64| {
            rows.iter()
                .find(|r| r.model == model && r.latency == lat && (r.stall - stall).abs() < 1e-9)
                .map(|r| r.tokens_per_cycle)
                .unwrap()
        };
        assert!(tp("sp", 0, 0.0) >= tp("sp", 3, 0.0) * 0.8);
    }

    #[test]
    fn ablation_shows_shiftreg_fragility() {
        let rows = ablation(&TechParams::default()).unwrap();
        let clean = rows
            .iter()
            .find(|r| r.variant == "shiftreg stream" && r.stall == 0.0)
            .unwrap();
        assert!(
            clean.stream_intact,
            "static wrapper must be correct on regular streams: {clean}"
        );
        let dirty = rows
            .iter()
            .find(|r| r.variant == "shiftreg stream" && r.stall == 0.7)
            .unwrap();
        assert!(dirty.violations > clean.violations, "{dirty}");
        assert!(!dirty.stream_intact, "{dirty}");
    }

    #[test]
    fn figures_describe_both_architectures() {
        let figs = figures().unwrap();
        assert_eq!(figs.len(), 2);
        assert!(figs[0].rom.is_none(), "Fig 1 wrapper has no memory");
        let (words, width) = figs[1].rom.expect("Fig 2 wrapper has the ops memory");
        assert_eq!(words, 4, "Viterbi burst program: 4 operations");
        assert!(width >= 5 + 8, "masks + run field");
        let text = format!("{}", figs[1]);
        assert!(text.contains("operations memory"));
    }
}

//! Experiment drivers: one function per table/figure of the paper plus
//! the claim-driven sweeps (see DESIGN.md §4 for the index).

use crate::flow::{synthesize_wrapper, SpCompression, WrapperSynthesis};
use crate::soc::SocBuilder;
use lis_ip::{RsPearl, ViterbiPearl};
use lis_proto::{AccumulatorPearl, Pearl};
use lis_schedule::{compress, compress_bursty, random_schedule, IoSchedule, RandomScheduleParams};
use lis_sim::{SchedulerStats, SettleMode, WorkStealingPool};
use lis_synth::TechParams;
use lis_wrappers::{FsmEncoding, WrapperKind};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::time::Instant;

/// Runs a batch of independent wrapper syntheses, fanned out across
/// `pool` when one is given (the jobs share no state; results keep the
/// submission order either way).
fn synthesize_batch(
    jobs: Vec<(WrapperKind, IoSchedule, SpCompression)>,
    params: &TechParams,
    pool: Option<&WorkStealingPool>,
) -> Result<Vec<WrapperSynthesis>, lis_netlist::NetlistError> {
    match pool {
        Some(pool) => pool
            .map(jobs, |(kind, schedule, compression)| {
                synthesize_wrapper(kind, &schedule, compression, params)
            })
            .into_iter()
            .collect(),
        None => jobs
            .into_iter()
            .map(|(kind, schedule, compression)| {
                synthesize_wrapper(kind, &schedule, compression, params)
            })
            .collect(),
    }
}

/// Reference values from the paper's Table 1.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PaperRow {
    /// FSM slices.
    pub fsm_slices: usize,
    /// FSM frequency (MHz).
    pub fsm_mhz: f64,
    /// SP slices.
    pub sp_slices: usize,
    /// SP frequency (MHz).
    pub sp_mhz: f64,
}

/// The paper's Viterbi row: FSM 494 slices / 105 MHz, SP 24 / 105.
pub const PAPER_VITERBI: PaperRow = PaperRow {
    fsm_slices: 494,
    fsm_mhz: 105.0,
    sp_slices: 24,
    sp_mhz: 105.0,
};

/// The paper's RS row: FSM 2610 slices / 71 MHz, SP 24 / 105.
pub const PAPER_RS: PaperRow = PaperRow {
    fsm_slices: 2610,
    fsm_mhz: 71.0,
    sp_slices: 24,
    sp_mhz: 105.0,
};

/// One reproduced row of Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// IP name.
    pub ip: String,
    /// Port count (paper column "Port").
    pub ports: usize,
    /// Synchronization operations (paper column "wait").
    pub waits: usize,
    /// Largest run count (paper column "run").
    pub max_run: u32,
    /// Our FSM synthesis.
    pub fsm: WrapperSynthesis,
    /// Our SP synthesis.
    pub sp: WrapperSynthesis,
    /// Paper reference numbers.
    pub paper: PaperRow,
}

impl Table1Row {
    /// Area gain in percent ((sp − fsm)/fsm × 100; negative = saved).
    pub fn slice_gain_pct(&self) -> f64 {
        let fsm = self.fsm.report.area.slices as f64;
        let sp = self.sp.report.area.slices as f64;
        (sp - fsm) / fsm * 100.0
    }

    /// Frequency gain in percent.
    pub fn freq_gain_pct(&self) -> f64 {
        let fsm = self.fsm.report.timing.fmax_mhz;
        let sp = self.sp.report.timing.fmax_mhz;
        (sp - fsm) / fsm * 100.0
    }

    /// The paper's area gain for this row.
    pub fn paper_slice_gain_pct(&self) -> f64 {
        (self.paper.sp_slices as f64 - self.paper.fsm_slices as f64) / self.paper.fsm_slices as f64
            * 100.0
    }

    /// The paper's frequency gain for this row.
    pub fn paper_freq_gain_pct(&self) -> f64 {
        (self.paper.sp_mhz - self.paper.fsm_mhz) / self.paper.fsm_mhz * 100.0
    }
}

impl fmt::Display for Table1Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:8} {}/{}/{:<4}  FSM: {:5} sli {:6.1} MHz | SP: {:4} sli {:6.1} MHz | gain {:+6.1}% sli {:+6.1}% MHz (paper {:+.1}% / {:+.1}%)",
            self.ip,
            self.ports,
            self.waits,
            self.max_run,
            self.fsm.report.area.slices,
            self.fsm.report.timing.fmax_mhz,
            self.sp.report.area.slices,
            self.sp.report.timing.fmax_mhz,
            self.slice_gain_pct(),
            self.freq_gain_pct(),
            self.paper_slice_gain_pct(),
            self.paper_freq_gain_pct(),
        )
    }
}

/// Reproduces Table 1: FSM vs SP synthesis of the Viterbi and RS wrapper
/// controllers.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn table1(params: &TechParams) -> Result<Vec<Table1Row>, lis_netlist::NetlistError> {
    table1_with(params, None)
}

/// [`table1`] with the four independent wrapper syntheses fanned out
/// across a work-stealing pool.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn table1_with(
    params: &TechParams,
    pool: Option<&WorkStealingPool>,
) -> Result<Vec<Table1Row>, lis_netlist::NetlistError> {
    // Viterbi: 5 ports, burst program (4 ops, run up to 198).
    let viterbi_schedule = ViterbiPearl::new("viterbi").schedule().clone();
    let viterbi_program = compress_bursty(&viterbi_schedule);
    // RS: 4 ports, safe program (one op per cycle, run 1).
    let rs_schedule = RsPearl::new("rs").schedule().clone();
    let rs_program = compress(&rs_schedule);

    let mut results = synthesize_batch(
        vec![
            (
                WrapperKind::Fsm(FsmEncoding::OneHot),
                viterbi_schedule.clone(),
                SpCompression::Safe,
            ),
            (WrapperKind::Sp, viterbi_schedule, SpCompression::Burst),
            (
                WrapperKind::Fsm(FsmEncoding::OneHot),
                rs_schedule.clone(),
                SpCompression::Safe,
            ),
            (WrapperKind::Sp, rs_schedule, SpCompression::Safe),
        ],
        params,
        pool,
    )?
    .into_iter();
    let mut next = || results.next().expect("one result per job");

    Ok(vec![
        Table1Row {
            ip: "Viterbi".to_owned(),
            ports: 5,
            waits: viterbi_program.len(),
            max_run: viterbi_program.max_run(),
            fsm: next(),
            sp: next(),
            paper: PAPER_VITERBI,
        },
        Table1Row {
            ip: "RS".to_owned(),
            ports: 4,
            waits: rs_program.len(),
            max_run: rs_program.max_run(),
            fsm: next(),
            sp: next(),
            paper: PAPER_RS,
        },
    ])
}

/// One point of the scaling sweep (experiment E3/E4).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Swept quantity value (schedule cycles for E3, ports for E4).
    pub x: usize,
    /// Wrapper model.
    pub model: String,
    /// Occupied slices.
    pub slices: usize,
    /// Maximum frequency.
    pub fmax_mhz: f64,
    /// ROM bits (schedule storage — grows for the SP while logic stays
    /// flat).
    pub rom_bits: usize,
}

impl fmt::Display for ScalingRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "x={:6} {:12} {:6} slices {:7.1} MHz {:8} ROM bits",
            self.x, self.model, self.slices, self.fmax_mhz, self.rom_bits
        )
    }
}

fn sweep_schedule(period: usize, n_inputs: usize, n_outputs: usize) -> IoSchedule {
    random_schedule(
        0xC0FFEE ^ period as u64 ^ ((n_inputs as u64) << 32),
        RandomScheduleParams {
            n_inputs,
            n_outputs,
            period,
            sync_density: 0.3,
            port_density: 0.5,
        },
    )
}

/// E3: area/fmax vs schedule length at fixed port count.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn scaling_by_length(
    periods: &[usize],
    params: &TechParams,
) -> Result<Vec<ScalingRow>, lis_netlist::NetlistError> {
    scaling_by_length_with(periods, params, None)
}

/// [`scaling_by_length`] with the independent syntheses fanned out
/// across a work-stealing pool.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn scaling_by_length_with(
    periods: &[usize],
    params: &TechParams,
    pool: Option<&WorkStealingPool>,
) -> Result<Vec<ScalingRow>, lis_netlist::NetlistError> {
    let mut jobs = Vec::new();
    let mut xs = Vec::new();
    for &period in periods {
        let schedule = sweep_schedule(period, 2, 2);
        for kind in [
            WrapperKind::Comb,
            WrapperKind::Fsm(FsmEncoding::OneHot),
            WrapperKind::ShiftReg,
            WrapperKind::Sp,
        ] {
            jobs.push((kind, schedule.clone(), SpCompression::Safe));
            xs.push(period);
        }
    }
    let rows = synthesize_batch(jobs, params, pool)?;
    Ok(xs
        .into_iter()
        .zip(rows)
        .map(|(x, w)| ScalingRow {
            x,
            model: w.model.clone(),
            slices: w.report.area.slices,
            fmax_mhz: w.report.timing.fmax_mhz,
            rom_bits: w.report.area.rom_bits_bram + w.report.area.rom_bits_lutram,
        })
        .collect())
}

/// E4: area/fmax vs port count at fixed schedule length.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn scaling_by_ports(
    port_counts: &[usize],
    params: &TechParams,
) -> Result<Vec<ScalingRow>, lis_netlist::NetlistError> {
    scaling_by_ports_with(port_counts, params, None)
}

/// [`scaling_by_ports`] with the independent syntheses fanned out across
/// a work-stealing pool.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn scaling_by_ports_with(
    port_counts: &[usize],
    params: &TechParams,
    pool: Option<&WorkStealingPool>,
) -> Result<Vec<ScalingRow>, lis_netlist::NetlistError> {
    let mut jobs = Vec::new();
    let mut xs = Vec::new();
    for &ports in port_counts {
        let n_in = ports.div_ceil(2);
        let n_out = ports / 2;
        let schedule = sweep_schedule(64, n_in, n_out.max(1));
        for kind in [
            WrapperKind::Comb,
            WrapperKind::Fsm(FsmEncoding::OneHot),
            WrapperKind::Sp,
        ] {
            jobs.push((kind, schedule.clone(), SpCompression::Safe));
            xs.push(ports);
        }
    }
    let rows = synthesize_batch(jobs, params, pool)?;
    Ok(xs
        .into_iter()
        .zip(rows)
        .map(|(x, w)| ScalingRow {
            x,
            model: w.model.clone(),
            slices: w.report.area.slices,
            fmax_mhz: w.report.timing.fmax_mhz,
            rom_bits: w.report.area.rom_bits_bram + w.report.area.rom_bits_lutram,
        })
        .collect())
}

/// One point of the throughput experiment (E5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputRow {
    /// Wrapper model.
    pub model: String,
    /// Relay stations on each link.
    pub latency: usize,
    /// Source/sink stall probability.
    pub stall: f64,
    /// Informative tokens delivered per cycle.
    pub tokens_per_cycle: f64,
    /// Whether the informative stream matched the zero-latency reference.
    pub stream_intact: bool,
    /// Protocol violations observed.
    pub violations: u64,
}

impl fmt::Display for ThroughputRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:12} latency={} stall={:.2}: {:.4} tok/cyc, intact={}, violations={}",
            self.model,
            self.latency,
            self.stall,
            self.tokens_per_cycle,
            self.stream_intact,
            self.violations
        )
    }
}

/// E5: throughput and correctness of a relayed accumulator pipeline
/// under every wrapper model, across link latencies and stall rates.
pub fn throughput_sweep(latencies: &[usize], stalls: &[f64], cycles: u64) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    let kinds = [
        WrapperKind::Comb,
        WrapperKind::Fsm(FsmEncoding::OneHot),
        WrapperKind::Sp,
    ];
    // Reference stream: what the pearl computes on ideal channels.
    let reference: Vec<u64> = (1..=u64::MAX)
        .scan(0u64, |acc, v| {
            *acc = acc.wrapping_add(v);
            Some(*acc)
        })
        .take(100_000)
        .collect();

    for kind in kinds {
        for &latency in latencies {
            for &stall in stalls {
                let mut b = SocBuilder::new();
                let ip = b.add_ip("acc", Box::new(AccumulatorPearl::new("acc", 1, 1, 0)), kind);
                let stage = b.channel("stage", 32);
                b.feed("src", stage, 1..=1_000_000, stall, 17);
                b.link(stage, ip.inputs[0], latency);
                let out_stage = b.channel("out_stage", 32);
                b.link(ip.outputs[0], out_stage, latency);
                b.capture("out", out_stage, stall, 23);
                let mut soc = b.build();
                soc.run(cycles).expect("simulation");
                let got = soc.received("out");
                let intact = got.len() <= reference.len() && got[..] == reference[..got.len()];
                rows.push(ThroughputRow {
                    model: kind.to_string(),
                    latency,
                    stall,
                    tokens_per_cycle: got.len() as f64 / cycles as f64,
                    stream_intact: intact,
                    violations: soc.violations(),
                });
            }
        }
    }
    rows
}

/// Configuration of the E5 settle-path throughput benchmark: a grid of
/// `chains` independent pipelines, each `depth` gate-level SP-wrapped
/// pearls deep, linked through relay stations.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SettleBenchConfig {
    /// Independent pearl pipelines (the parallelism width).
    pub chains: usize,
    /// Pearls per pipeline.
    pub depth: usize,
    /// Relay stations on each inter-stage link (0 = unbuffered).
    pub relays: usize,
    /// Extra zero-latency wire segments per link: the long unbuffered
    /// wires whose `stop` back-pressure ripples *combinationally* across
    /// the whole chain within one cycle — the settle problem relay
    /// stations exist to segment (paper §2). The blind full sweep pays
    /// one whole-system sweep per ripple hop; the worklist re-evaluates
    /// only the wires the ripple actually reaches.
    pub wire_hops: usize,
    /// Clock cycles to simulate per engine.
    pub cycles: u64,
    /// Source/sink stall probability (stalls are what launch `stop`
    /// ripples).
    pub stall: f64,
}

impl Default for SettleBenchConfig {
    fn default() -> Self {
        SettleBenchConfig {
            chains: 4,
            depth: 4,
            relays: 0,
            wire_hops: 8,
            cycles: 1500,
            stall: 0.3,
        }
    }
}

/// Stable structural shape of the settle-bench SoC (drift-checkable).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SettleBenchShape {
    /// Total pearls instantiated.
    pub pearls: usize,
    /// Simulator components (shells + relays + wires + endpoints).
    pub components: usize,
    /// Signals in the arena.
    pub signals: usize,
    /// Scheduler groups after clustering + SCC condensation.
    pub sched_groups: usize,
    /// Scheduler dependency levels.
    pub sched_levels: usize,
    /// Condensed combinational SCCs needing an inner fixpoint.
    pub sched_cyclic_groups: usize,
    /// Widest level (available parallelism).
    pub sched_max_level_width: usize,
}

/// One engine measurement of the settle-path benchmark.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SettleBenchRow {
    /// Settle engine ("full-sweep" or "worklist").
    pub engine: String,
    /// Evaluation threads.
    pub threads: usize,
    /// Cycles simulated.
    pub cycles: u64,
    /// Wall time (volatile; excluded from drift checks).
    pub wall_ms: f64,
    /// Simulated kilocycles per second (volatile).
    pub kcps: f64,
    /// Total informative tokens delivered across all sinks (stable —
    /// must be identical for every engine).
    pub received: u64,
    /// Wrapping sum of all delivered tokens (stable).
    pub checksum: u64,
    /// Groups evaluated by activity-driven settles (stable; 0 for the
    /// legacy engines).
    pub groups_evaluated: u64,
    /// Groups skipped as quiescent (stable; 0 for the legacy engines).
    pub groups_skipped: u64,
    /// Component ticks executed (stable; 0 for the legacy engines).
    pub components_ticked: u64,
    /// Component ticks skipped as quiescent (stable; 0 for the legacy
    /// engines).
    pub components_quiescent: u64,
}

impl fmt::Display for SettleBenchRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:10} threads={}: {:8.1} kcyc/s ({:7.1} ms for {} cycles), {} tokens, checksum {:#x}",
            self.engine,
            self.threads,
            self.kcps,
            self.wall_ms,
            self.cycles,
            self.received,
            self.checksum
        )?;
        let evals = self.groups_evaluated + self.groups_skipped;
        let ticks = self.components_ticked + self.components_quiescent;
        if evals > 0 || ticks > 0 {
            write!(
                f,
                ", skipped {:.1}% of group evals / {:.1}% of ticks",
                100.0 * self.groups_skipped as f64 / evals.max(1) as f64,
                100.0 * self.components_quiescent as f64 / ticks.max(1) as f64,
            )?;
        }
        Ok(())
    }
}

/// Builds the many-pearl settle-bench SoC: `chains` × `depth` gate-level
/// SP-wrapped accumulators (the complete Figure 2 shell, ports included,
/// so every settle evaluates real gate-level logic).
fn settle_bench_soc(cfg: &SettleBenchConfig, mode: SettleMode, threads: usize) -> crate::soc::Soc {
    let mut b = SocBuilder::new();
    b.set_settle_mode(mode);
    b.set_threads(threads);
    for c in 0..cfg.chains {
        let mut upstream: Option<lis_proto::LisChannel> = None;
        for d in 0..cfg.depth {
            let ip = b.add_ip_full_netlist(
                format!("p{c}_{d}"),
                Box::new(AccumulatorPearl::new("acc", 1, 1, 0)),
                WrapperKind::Sp,
            );
            match upstream {
                None => b.feed(
                    format!("src{c}"),
                    ip.inputs[0],
                    1..=1_000_000,
                    cfg.stall,
                    1000 + c as u64,
                ),
                Some(prev) => {
                    // A long unbuffered wire: `wire_hops` staged
                    // zero-latency segments, then the (optional) relay
                    // stations, then the pearl input.
                    let mut cur = prev;
                    for h in 0..cfg.wire_hops {
                        let next = b.channel(&format!("w{c}_{d}_{h}"), 32);
                        b.link(cur, next, 0);
                        cur = next;
                    }
                    b.link(cur, ip.inputs[0], cfg.relays);
                }
            }
            upstream = Some(ip.outputs[0]);
        }
        b.capture(
            format!("out{c}"),
            upstream.expect("depth >= 1"),
            cfg.stall,
            2000 + c as u64,
        );
    }
    b.build()
}

/// Canonical bench label of a [`SettleMode`].
pub fn engine_name(mode: SettleMode) -> &'static str {
    match mode {
        SettleMode::FullSweep => "full-sweep",
        SettleMode::Worklist => "worklist",
        SettleMode::ActivityDriven => "activity",
        SettleMode::FastForward => "fast-forward",
    }
}

/// E5 (settle path): wall-clock throughput of the component kernel on a
/// many-pearl SoC, per settle engine and thread count. Every
/// configuration must deliver the identical token streams — the
/// checksum column proves it.
pub fn settle_bench(
    cfg: &SettleBenchConfig,
    engines: &[(SettleMode, usize)],
) -> (SettleBenchShape, Vec<SettleBenchRow>) {
    let mut shape: Option<SettleBenchShape> = None;
    let rows = engines
        .iter()
        .map(|&(mode, threads)| {
            let mut soc = settle_bench_soc(cfg, mode, threads);
            if shape.is_none() {
                // The structural shape is mode/thread-independent; read
                // it off the first engine's SoC before timing it (the
                // scheduler seal this triggers is work every engine
                // would do inside its first settle anyway).
                let stats: SchedulerStats = soc.system_mut().scheduler_stats();
                shape = Some(SettleBenchShape {
                    pearls: cfg.chains * cfg.depth,
                    components: soc.system().component_count(),
                    signals: soc.system().signal_count(),
                    sched_groups: stats.groups,
                    sched_levels: stats.levels,
                    sched_cyclic_groups: stats.cyclic_groups,
                    sched_max_level_width: stats.max_level_width,
                });
            }
            let start = Instant::now();
            soc.run(cfg.cycles).expect("settle bench simulation");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            let mut received = 0u64;
            let mut checksum = 0u64;
            for c in 0..cfg.chains {
                for v in soc.received(&format!("out{c}")) {
                    received += 1;
                    checksum = checksum.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(v);
                }
            }
            assert_eq!(soc.violations(), 0, "settle bench must stay protocol-clean");
            let run_stats = soc.scheduler_stats();
            SettleBenchRow {
                engine: engine_name(mode).to_owned(),
                threads,
                cycles: cfg.cycles,
                wall_ms,
                kcps: cfg.cycles as f64 / 1e3 / (wall_ms / 1e3),
                received,
                checksum,
                groups_evaluated: run_stats.groups_evaluated,
                groups_skipped: run_stats.groups_skipped,
                components_ticked: run_stats.components_ticked,
                components_quiescent: run_stats.components_quiescent,
            }
        })
        .collect();
    (shape.expect("at least one engine"), rows)
}

/// One row of the ablation study (E6): FSM encodings and the static
/// wrapper's failure under irregular streams.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AblationRow {
    /// What was varied.
    pub variant: String,
    /// Slices (synthesis ablations) — 0 for behavioural rows.
    pub slices: usize,
    /// fmax (synthesis ablations) — 0 for behavioural rows.
    pub fmax_mhz: f64,
    /// Stall probability injected (behavioural rows).
    pub stall: f64,
    /// Whether the output stream was correct.
    pub stream_intact: bool,
    /// Protocol violations.
    pub violations: u64,
}

impl fmt::Display for AblationRow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.slices > 0 {
            write!(
                f,
                "{:24} {:6} slices {:7.1} MHz",
                self.variant, self.slices, self.fmax_mhz
            )
        } else {
            write!(
                f,
                "{:24} stall={:.2} intact={} violations={}",
                self.variant, self.stall, self.stream_intact, self.violations
            )
        }
    }
}

/// E6: design ablations — one-hot vs binary FSM encoding on the Table 1
/// schedules, and shift-register correctness vs stream irregularity.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn ablation(params: &TechParams) -> Result<Vec<AblationRow>, lis_netlist::NetlistError> {
    let mut rows = Vec::new();

    let viterbi = ViterbiPearl::new("v");
    for (label, enc) in [
        ("viterbi fsm one-hot", FsmEncoding::OneHot),
        ("viterbi fsm binary", FsmEncoding::Binary),
    ] {
        let w = synthesize_wrapper(
            WrapperKind::Fsm(enc),
            viterbi.schedule(),
            SpCompression::Safe,
            params,
        )?;
        rows.push(AblationRow {
            variant: label.to_owned(),
            slices: w.report.area.slices,
            fmax_mhz: w.report.timing.fmax_mhz,
            stall: 0.0,
            stream_intact: true,
            violations: 0,
        });
    }

    // Fabric generation: does the SP still win on a modern 6-LUT
    // device? (The paper's claim is structural, so it should.)
    let rs = RsPearl::new("r");
    for (label, p) in [
        ("rs sp  on 6-LUT fabric", TechParams::modern_6lut()),
        ("rs fsm on 6-LUT fabric", TechParams::modern_6lut()),
    ] {
        let kind = if label.contains("sp") {
            WrapperKind::Sp
        } else {
            WrapperKind::Fsm(FsmEncoding::OneHot)
        };
        let w = synthesize_wrapper(kind, rs.schedule(), SpCompression::Safe, &p)?;
        rows.push(AblationRow {
            variant: label.to_owned(),
            slices: w.report.area.slices,
            fmax_mhz: w.report.timing.fmax_mhz,
            stall: 0.0,
            stream_intact: true,
            violations: 0,
        });
    }

    // Shift-register wrapper: correct only without irregularity. The
    // Casu-style pattern (one warm-up slot, then streaming at 3/4 rate)
    // is rate-matched to an ideal source; a source stalling beyond the
    // slack the 2-deep port queues provide starves the fixed schedule.
    for stall in [0.0, 0.2, 0.5, 0.7] {
        let mut b = SocBuilder::new();
        let pearl = AccumulatorPearl::new("acc", 1, 1, 0);
        let policy = Box::new(lis_wrappers::ShiftRegPolicy::with_pattern(
            pearl.schedule().clone(),
            vec![false, true, true, true],
        ));
        let ip = b.add_ip_with_policy("acc", Box::new(pearl), policy);
        // Feed more tokens than the static schedule can consume in the
        // run: a static wrapper has no way to stop at end-of-stream, so
        // the experiment must not starve it artificially.
        b.feed("src", ip.inputs[0], 1..=1000, stall, 31);
        b.capture("out", ip.outputs[0], 0.0, 32);
        let mut soc = b.build();
        soc.run(700).expect("simulation");
        let got = soc.received("out");
        let reference: Vec<u64> = (1..=1000u64)
            .scan(0u64, |acc, v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        let intact =
            !got.is_empty() && got.len() <= reference.len() && got[..] == reference[..got.len()];
        rows.push(AblationRow {
            variant: "shiftreg stream".to_owned(),
            slices: 0,
            fmax_mhz: 0.0,
            stall,
            stream_intact: intact && soc.violations() == 0,
            violations: soc.violations(),
        });
    }
    Ok(rows)
}

/// Structural inventory of the two figure architectures (F1/F2).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FigureReport {
    /// Which figure ("Figure 1" / "Figure 2").
    pub figure: String,
    /// Wrapper model depicted.
    pub model: String,
    /// Interface ports of the generated controller (name, width, dir).
    pub interface: Vec<(String, usize, String)>,
    /// Netlist census.
    pub stats: String,
    /// ROM geometry, when present (words × width).
    pub rom: Option<(usize, usize)>,
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} — {} wrapper", self.figure, self.model)?;
        for (name, width, dir) in &self.interface {
            writeln!(f, "    {dir:6} {name:10} [{width} bit]")?;
        }
        if let Some((words, width)) = self.rom {
            writeln!(f, "    operations memory: {words} words × {width} bits")?;
        }
        writeln!(f, "    {}", self.stats)
    }
}

/// F1/F2: regenerate the structural content of the paper's two figures
/// from the actual generators.
///
/// # Errors
///
/// Propagates netlist generation/validation errors.
pub fn figures() -> Result<Vec<FigureReport>, lis_netlist::NetlistError> {
    let viterbi = ViterbiPearl::new("v");
    let schedule = viterbi.schedule();

    let mut out = Vec::new();
    for (figure, kind, compression) in [
        ("Figure 1", WrapperKind::Comb, SpCompression::Safe),
        ("Figure 2", WrapperKind::Sp, SpCompression::Burst),
    ] {
        let module = match (kind, compression) {
            (WrapperKind::Sp, SpCompression::Burst) => {
                lis_wrappers::generate_sp(&compress_bursty(schedule))?
            }
            _ => kind.generate_netlist(schedule)?,
        };
        let interface: Vec<(String, usize, String)> = module
            .inputs
            .iter()
            .map(|p| (p.name.clone(), p.width(), "input".to_owned()))
            .chain(
                module
                    .outputs
                    .iter()
                    .map(|p| (p.name.clone(), p.width(), "output".to_owned())),
            )
            .collect();
        let rom = module
            .roms
            .first()
            .map(|r| (r.contents.len(), r.data.len()));
        out.push(FigureReport {
            figure: figure.to_owned(),
            model: kind.to_string(),
            interface,
            stats: lis_netlist::NetlistStats::of(&module).to_string(),
            rom,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_paper_shape() {
        let rows = table1(&TechParams::default()).unwrap();
        assert_eq!(rows.len(), 2);
        let viterbi = &rows[0];
        let rs = &rows[1];

        // Column "Port/wait/run" matches the paper (RS waits off by one:
        // ours synchronizes on the marker cycle too).
        assert_eq!(viterbi.ports, 5);
        assert_eq!(viterbi.waits, 4);
        assert_eq!(viterbi.max_run, 198);
        assert_eq!(rs.ports, 4);
        assert!((2956..=2958).contains(&rs.waits));
        assert_eq!(rs.max_run, 1);

        // Shape: SP beats the FSM on area for both IPs; decisively for RS.
        assert!(viterbi.slice_gain_pct() < -50.0, "{viterbi}");
        assert!(rs.slice_gain_pct() < -90.0, "{rs}");

        // Shape: SP area is (nearly) the same for both IPs — independent
        // of schedule length.
        let s1 = viterbi.sp.report.area.slices as f64;
        let s2 = rs.sp.report.area.slices as f64;
        assert!(
            (s1 - s2).abs() / s1.max(s2) < 0.5,
            "SP slices must be schedule-independent: {s1} vs {s2}"
        );

        // Shape: the RS FSM is slower than the SP; the Viterbi FSM is
        // within ~15% of the SP (paper: exactly equal).
        assert!(rs.freq_gain_pct() > 10.0, "{rs}");
        assert!(viterbi.freq_gain_pct().abs() < 25.0, "{viterbi}");

        // The FSM for RS is much bigger than for Viterbi (2958 vs 202
        // states).
        assert!(rs.fsm.report.area.slices > 3 * viterbi.fsm.report.area.slices);
    }

    #[test]
    fn scaling_by_length_shows_flat_sp() {
        let rows = scaling_by_length(&[32, 256, 1024], &TechParams::default()).unwrap();
        let slices_of = |model: &str, x: usize| {
            rows.iter()
                .find(|r| r.model == model && r.x == x)
                .map(|r| r.slices)
                .unwrap()
        };
        let sp_growth = slices_of("sp", 1024) as f64 / slices_of("sp", 32).max(1) as f64;
        let fsm_growth =
            slices_of("fsm-onehot", 1024) as f64 / slices_of("fsm-onehot", 32).max(1) as f64;
        assert!(
            fsm_growth > 6.0 * sp_growth,
            "fsm×{fsm_growth:.1} vs sp×{sp_growth:.1}"
        );
    }

    #[test]
    fn throughput_sweep_streams_stay_intact_for_protocol_wrappers() {
        let rows = throughput_sweep(&[0, 3], &[0.0, 0.3], 1500);
        for row in &rows {
            assert!(row.stream_intact, "{row}");
            assert_eq!(row.violations, 0, "{row}");
            assert!(row.tokens_per_cycle > 0.0, "{row}");
        }
        // Latency reduces or maintains throughput, never corrupts.
        let tp = |model: &str, lat: usize, stall: f64| {
            rows.iter()
                .find(|r| r.model == model && r.latency == lat && (r.stall - stall).abs() < 1e-9)
                .map(|r| r.tokens_per_cycle)
                .unwrap()
        };
        assert!(tp("sp", 0, 0.0) >= tp("sp", 3, 0.0) * 0.8);
    }

    #[test]
    fn settle_bench_engines_agree_and_shape_is_parallel() {
        let cfg = SettleBenchConfig {
            chains: 2,
            depth: 2,
            relays: 1,
            wire_hops: 3,
            cycles: 120,
            stall: 0.2,
        };
        let (shape, rows) = settle_bench(
            &cfg,
            &[
                (SettleMode::FullSweep, 1),
                (SettleMode::Worklist, 1),
                (SettleMode::Worklist, 4),
            ],
        );
        assert_eq!(shape.pearls, 4);
        assert!(
            shape.sched_max_level_width >= cfg.chains,
            "independent chains must be schedulable in parallel: {shape:?}"
        );
        assert!(rows[0].received > 0, "data must flow: {:?}", rows[0]);
        for pair in rows.windows(2) {
            assert_eq!(pair[0].received, pair[1].received, "{pair:?}");
            assert_eq!(pair[0].checksum, pair[1].checksum, "{pair:?}");
        }
    }

    #[test]
    fn parallel_synthesis_matches_sequential() {
        let params = TechParams::default();
        let pool = WorkStealingPool::new(4);
        let seq = scaling_by_length(&[32, 64], &params).unwrap();
        let par = scaling_by_length_with(&[32, 64], &params, Some(&pool)).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.x, b.x);
            assert_eq!(a.model, b.model);
            assert_eq!(a.slices, b.slices);
            assert_eq!(a.rom_bits, b.rom_bits);
        }
    }

    #[test]
    fn ablation_shows_shiftreg_fragility() {
        let rows = ablation(&TechParams::default()).unwrap();
        let clean = rows
            .iter()
            .find(|r| r.variant == "shiftreg stream" && r.stall == 0.0)
            .unwrap();
        assert!(
            clean.stream_intact,
            "static wrapper must be correct on regular streams: {clean}"
        );
        let dirty = rows
            .iter()
            .find(|r| r.variant == "shiftreg stream" && r.stall == 0.7)
            .unwrap();
        assert!(dirty.violations > clean.violations, "{dirty}");
        assert!(!dirty.stream_intact, "{dirty}");
    }

    #[test]
    fn figures_describe_both_architectures() {
        let figs = figures().unwrap();
        assert_eq!(figs.len(), 2);
        assert!(figs[0].rom.is_none(), "Fig 1 wrapper has no memory");
        let (words, width) = figs[1].rom.expect("Fig 2 wrapper has the ops memory");
        assert_eq!(words, 4, "Viterbi burst program: 4 operations");
        assert!(width >= 5 + 8, "masks + run field");
        let text = format!("{}", figs[1]);
        assert!(text.contains("operations memory"));
    }
}

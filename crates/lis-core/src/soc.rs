//! SoC assembly: patient processes, channels, relay stations, sources
//! and sinks, composed into a runnable system.
//!
//! This is the level at which the LIS methodology operates: IPs are
//! encapsulated, long wires are segmented with relay stations, and the
//! resulting system is correct for *any* latency assignment.

use lis_proto::{
    LisChannel, Pearl, RelayStation, SeqSink, SeqSource, StallControl, StallPattern, TokenSink,
    TokenSource, ViolationCounter,
};
use lis_sim::{
    Activity, Component, Ports, SchedulerStats, SettleMode, SignalView, SimError, System, Trace,
};
use lis_wrappers::{
    wrap_pearl, wrap_pearl_full_netlist, wrap_pearl_netlist, PatientStats, WrapperKind,
};
use std::collections::HashMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

/// A zero-latency connector: forwards `data`/`void` downstream and
/// `stop` upstream, combinationally. Shared with the fleet builder.
#[derive(Debug)]
pub(crate) struct Wire {
    pub(crate) name: String,
    pub(crate) up: LisChannel,
    pub(crate) down: LisChannel,
}

impl Component for Wire {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        // Fully combinational in both directions.
        self.up
            .downstream_reads()
            .merge(self.up.consumer_ports())
            .merge(self.down.producer_ports())
            .merge(self.down.stop_reads())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let tok = self.up.read_token(sigs);
        self.down.write_token(sigs, tok);
        let stop = self.down.read_stop(sigs);
        self.up.write_stop(sigs, stop);
    }

    fn tick(&mut self, _sigs: &SignalView<'_>) -> Activity {
        // Stateless: re-evaluated only when a wire it reads changes.
        Activity::Quiescent
    }
}

/// Handle to an encapsulated IP inside a [`SocBuilder`].
#[derive(Debug, Clone)]
pub struct IpHandle {
    /// Instance name.
    pub name: String,
    /// Input channels, in pearl input-port order.
    pub inputs: Vec<LisChannel>,
    /// Output channels, in pearl output-port order.
    pub outputs: Vec<LisChannel>,
}

/// Incremental SoC constructor.
///
/// # Examples
///
/// The README quickstart, runnable: one accumulator pearl behind an SP
/// wrapper, a stalling source, and a recording sink.
///
/// ```
/// use lis_core::SocBuilder;
/// use lis_proto::AccumulatorPearl;
/// use lis_wrappers::WrapperKind;
///
/// # fn main() -> Result<(), lis_sim::SimError> {
/// let mut b = SocBuilder::new();
/// let ip = b.add_ip(
///     "acc",
///     Box::new(AccumulatorPearl::new("acc", 1, 1, 2)),
///     WrapperKind::Sp,
/// );
/// b.feed("src", ip.inputs[0], 1..=5, 0.3, 7); // 30% stalls, seed 7
/// b.capture("out", ip.outputs[0], 0.2, 8);
/// let mut soc = b.build();
/// soc.run(100)?;
/// // Latency insensitivity: stalls change *when* tokens arrive, never
/// // *what* arrives.
/// assert_eq!(soc.received("out"), vec![1, 3, 6, 10, 15]);
/// assert_eq!(soc.violations(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct SocBuilder {
    system: System,
    violations: ViolationCounter,
    stats: HashMap<String, PatientStats>,
    sinks: HashMap<String, Arc<Mutex<Vec<u64>>>>,
    trace: Trace,
}

impl Default for SocBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SocBuilder {
    /// Starts an empty SoC.
    pub fn new() -> Self {
        SocBuilder {
            system: System::new(),
            violations: ViolationCounter::new(),
            stats: HashMap::new(),
            sinks: HashMap::new(),
            trace: Trace::new(),
        }
    }

    /// Records a channel's three wires (`data`/`void`/`stop`) in the
    /// SoC's waveform trace; see [`Soc::vcd`].
    pub fn watch_channel(&mut self, label: &str, channel: LisChannel) {
        self.trace
            .watch(format!("{label}_data"), &self.system, channel.data);
        self.trace
            .watch(format!("{label}_void"), &self.system, channel.void);
        self.trace
            .watch(format!("{label}_stop"), &self.system, channel.stop);
    }

    /// Encapsulates `pearl` behind a behavioural wrapper of the given
    /// kind and instantiates it.
    pub fn add_ip(
        &mut self,
        name: impl Into<String>,
        pearl: Box<dyn Pearl>,
        kind: WrapperKind,
    ) -> IpHandle {
        let policy = kind.make_policy(pearl.schedule());
        self.add_ip_with_policy(name, pearl, policy)
    }

    /// Encapsulates `pearl` behind an explicit synchronization policy
    /// (e.g. a [`lis_wrappers::ShiftRegPolicy`] with a hand-computed
    /// activation pattern).
    pub fn add_ip_with_policy(
        &mut self,
        name: impl Into<String>,
        pearl: Box<dyn Pearl>,
        policy: Box<dyn lis_wrappers::SyncPolicy>,
    ) -> IpHandle {
        let name = name.into();
        let (inputs, outputs, stats) =
            wrap_pearl(&mut self.system, &name, pearl, policy, &self.violations);
        self.stats.insert(name.clone(), stats);
        IpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Encapsulates `pearl` behind the *gate-level* wrapper controller of
    /// the given kind (hardware-in-the-loop).
    pub fn add_ip_netlist(
        &mut self,
        name: impl Into<String>,
        pearl: Box<dyn Pearl>,
        kind: WrapperKind,
    ) -> IpHandle {
        let name = name.into();
        let controller = kind
            .generate_netlist(pearl.schedule())
            .expect("wrapper generation failed");
        let (inputs, outputs) =
            wrap_pearl_netlist(&mut self.system, &name, pearl, controller, &self.violations);
        IpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Encapsulates `pearl` behind the *complete* gate-level shell
    /// (controller plus port FIFOs, all interpreted gate by gate) —
    /// the highest-fidelity model of the paper's Figure 2.
    pub fn add_ip_full_netlist(
        &mut self,
        name: impl Into<String>,
        pearl: Box<dyn Pearl>,
        kind: WrapperKind,
    ) -> IpHandle {
        let name = name.into();
        let controller = kind
            .generate_netlist(pearl.schedule())
            .expect("wrapper generation failed");
        let (inputs, outputs) =
            wrap_pearl_full_netlist(&mut self.system, &name, pearl, controller, &self.violations);
        IpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Encapsulates `pearl` behind an explicitly provided gate-level
    /// controller inside the complete shell (controller plus port
    /// FIFOs).
    ///
    /// This is the seam for controllers whose program is *not* the
    /// default lowering of the pearl's schedule — e.g. an SP running an
    /// uncompressed or burst-compressed program
    /// ([`lis_wrappers::generate_sp`] over any
    /// [`lis_schedule::SpProgram`]). The controller must implement the
    /// pearl's schedule; the wrapper harness checks protocol conformance
    /// at runtime via the shared violation counter.
    pub fn add_ip_full_netlist_with_controller(
        &mut self,
        name: impl Into<String>,
        pearl: Box<dyn Pearl>,
        controller: lis_netlist::Module,
    ) -> IpHandle {
        let name = name.into();
        let (inputs, outputs) =
            wrap_pearl_full_netlist(&mut self.system, &name, pearl, controller, &self.violations);
        IpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Allocates a free-standing staging channel (useful between a
    /// source and a relayed link).
    pub fn channel(&mut self, name: &str, width: u32) -> LisChannel {
        LisChannel::new(&mut self.system, name, width)
    }

    /// Connects producer channel `from` to consumer channel `to` through
    /// `relay_count` relay stations (`0` = a plain wire).
    pub fn link(&mut self, from: LisChannel, to: LisChannel, relay_count: usize) {
        let tail = RelayStation::chain(
            &mut self.system,
            "link",
            from,
            relay_count,
            &self.violations,
        );
        let n = self.system.component_count();
        self.system.add_component(Wire {
            name: format!("wire{n}"),
            up: tail,
            down: to,
        });
    }

    /// Attaches a token source to `channel`. `stall` is a
    /// [`StallPattern`] — a plain probability (`f64`) still works and
    /// maps to [`StallPattern::Random`] seeded with `seed`.
    pub fn feed(
        &mut self,
        name: impl Into<String>,
        channel: LisChannel,
        tokens: impl IntoIterator<Item = u64>,
        stall: impl Into<StallPattern>,
        seed: u64,
    ) {
        let src = TokenSource::new(name, channel, tokens).with_stall_pattern(stall, seed);
        self.system.add_component(src);
    }

    /// Attaches a recording sink to `channel`; results retrievable by
    /// name from [`Soc::received`]. `stall` as in [`SocBuilder::feed`].
    pub fn capture(
        &mut self,
        name: impl Into<String>,
        channel: LisChannel,
        stall: impl Into<StallPattern>,
        seed: u64,
    ) {
        let name = name.into();
        let sink = TokenSink::new(name.clone(), channel).with_stall_pattern(stall, seed);
        self.sinks.insert(name, sink.received());
        self.system.add_component(sink);
    }

    /// Attaches an adversary sequence source to `channel` — the replay
    /// form of a model-checker stall schedule (see
    /// [`lis_proto::SeqSource`]).
    pub fn adversary_feed(
        &mut self,
        name: impl Into<String>,
        channel: LisChannel,
        control: StallControl,
        modulus: u64,
    ) {
        self.system
            .add_component(SeqSource::new(name, channel, control, modulus));
    }

    /// Attaches an adversary sequence sink to `channel`. Order faults
    /// (dropped or duplicated tokens) land on the SoC-wide violation
    /// counter reported by [`Soc::violations`]; the returned atomic
    /// counts informative deliveries, the progress signal a deadlock
    /// check watches.
    pub fn adversary_capture(
        &mut self,
        name: impl Into<String>,
        channel: LisChannel,
        control: StallControl,
        modulus: u64,
    ) -> Arc<AtomicU64> {
        let sink = SeqSink::new(name, channel, control, modulus, &self.violations);
        let delivered = sink.delivered();
        self.system.add_component(sink);
        delivered
    }

    /// Shared handle to the SoC-wide violation counter — lets
    /// externally built components (mutant relays, custom checkers)
    /// report faults through [`Soc::violations`].
    pub fn violations_handle(&self) -> ViolationCounter {
        self.violations.clone()
    }

    /// Mutable access to the underlying [`System`] — for attaching
    /// custom components (adapters, probes) the builder has no
    /// dedicated method for.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Sets the settle strategy of the underlying [`System`] (default:
    /// the dependency-aware scheduler; [`SettleMode::FullSweep`] is the
    /// legacy reference).
    pub fn set_settle_mode(&mut self, mode: SettleMode) {
        self.system.set_settle_mode(mode);
    }

    /// Sets the evaluation thread count of the underlying [`System`].
    pub fn set_threads(&mut self, threads: usize) {
        self.system.set_threads(threads);
    }

    /// Finalizes the SoC.
    pub fn build(self) -> Soc {
        Soc {
            system: self.system,
            violations: self.violations,
            stats: self.stats,
            sinks: self.sinks,
            trace: self.trace,
        }
    }
}

/// A runnable latency-insensitive system.
#[derive(Debug)]
pub struct Soc {
    system: System,
    violations: ViolationCounter,
    stats: HashMap<String, PatientStats>,
    sinks: HashMap<String, Arc<Mutex<Vec<u64>>>>,
    trace: Trace,
}

impl Soc {
    fn step_traced(&mut self) -> Result<(), SimError> {
        self.system.settle()?;
        if !self.trace.is_unwatched() {
            self.trace.sample(&mut self.system);
        }
        self.system.step()
    }

    /// Runs `cycles` clock cycles.
    ///
    /// Under [`SettleMode::FastForward`] the loop is target-based: after
    /// each executed cycle the system may jump the clock over a fully
    /// quiescent span, so fewer than `cycles` cycles are *visited* while
    /// the cycle counter still advances by exactly `cycles`.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (combinational-loop detection).
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        let target = self.system.cycle() + cycles;
        while self.system.cycle() < target {
            self.step_traced()?;
            self.system.fast_forward(target);
        }
        Ok(())
    }

    /// Runs until `predicate(self)` holds or `max_cycles` pass; returns
    /// whether it fired. The predicate is checked after each *visited*
    /// cycle (fast-forwarded spans cannot change observable state).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn run_until(
        &mut self,
        max_cycles: u64,
        mut predicate: impl FnMut(&Soc) -> bool,
    ) -> Result<bool, SimError> {
        let target = self.system.cycle() + max_cycles;
        while self.system.cycle() < target {
            self.step_traced()?;
            if predicate(self) {
                return Ok(true);
            }
            self.system.fast_forward(target);
        }
        Ok(false)
    }

    /// Runs until the system makes no progress (no patient process fires
    /// and no sink receives) for `idle_window` consecutive cycles, or
    /// `max_cycles` elapse. Returns the number of cycles the clock
    /// advanced (under [`SettleMode::FastForward`] that includes jumped
    /// cycles, which are idle by construction).
    ///
    /// A latency-insensitive system that quiesces with unconsumed input
    /// is deadlocked (e.g. a comb wrapper starving on an idle port);
    /// this is the diagnostic to catch it.
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`].
    pub fn run_until_quiescent(
        &mut self,
        max_cycles: u64,
        idle_window: u64,
    ) -> Result<u64, SimError> {
        let start = self.system.cycle();
        let target = start + max_cycles;
        let mut last = self.progress();
        let mut last_progress_cycle = start;
        while self.system.cycle() < target
            && self.system.cycle() - last_progress_cycle < idle_window
        {
            self.step_traced()?;
            let now = self.progress();
            if now != last {
                last = now;
                last_progress_cycle = self.system.cycle();
            }
            // Never jump past the idle deadline: quiescence must be
            // reported at the same cycle count as a stepped run.
            self.system
                .fast_forward(target.min(last_progress_cycle + idle_window));
        }
        Ok(self.system.cycle() - start)
    }

    /// A monotone progress counter: total fired cycles across
    /// behavioural patient processes plus total tokens received by
    /// sinks.
    pub fn progress(&self) -> u64 {
        let fired: u64 = self.stats.values().map(PatientStats::fired).sum();
        let received: u64 = self
            .sinks
            .values()
            .map(|s| s.lock().unwrap().len() as u64)
            .sum();
        fired + received
    }

    /// The recorded waveform as a VCD document (channels registered via
    /// [`SocBuilder::watch_channel`]).
    pub fn vcd(&self, top: &str) -> String {
        self.trace.to_vcd(top)
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.system.cycle()
    }

    /// Scheduler statistics: the structural shape (groups, levels, SCC
    /// census) plus — under [`SettleMode::ActivityDriven`] — the
    /// cumulative skip/eval/tick counters of the run so far.
    pub fn scheduler_stats(&mut self) -> SchedulerStats {
        self.system.scheduler_stats()
    }

    /// The underlying simulation system (e.g. for differential signal
    /// snapshots or scheduler statistics).
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// The informative stream captured by sink `name` so far.
    ///
    /// # Panics
    ///
    /// Panics if no sink has that name.
    pub fn received(&self, name: &str) -> Vec<u64> {
        self.sinks
            .get(name)
            .unwrap_or_else(|| panic!("no sink named {name}"))
            .lock()
            .unwrap()
            .clone()
    }

    /// Protocol violations observed so far (0 in a correct system).
    pub fn violations(&self) -> u64 {
        self.violations.count()
    }

    /// Utilization (fired / total cycles) of the named behavioural IP.
    pub fn utilization(&self, ip: &str) -> Option<f64> {
        self.stats.get(ip).map(PatientStats::utilization)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_proto::AccumulatorPearl;

    fn accumulator_soc(kind: WrapperKind) -> (Soc, &'static str) {
        let mut b = SocBuilder::new();
        let ip = b.add_ip("acc", Box::new(AccumulatorPearl::new("acc", 1, 1, 2)), kind);
        b.feed("src", ip.inputs[0], 1..=10, 0.0, 1);
        b.capture("out", ip.outputs[0], 0.0, 2);
        (b.build(), "out")
    }

    #[test]
    fn single_ip_soc_streams_data() {
        let (mut soc, sink) = accumulator_soc(WrapperKind::Sp);
        soc.run(100).unwrap();
        let got = soc.received(sink);
        let expected: Vec<u64> = (1..=10)
            .scan(0u64, |acc, v| {
                *acc += v;
                Some(*acc)
            })
            .collect();
        assert_eq!(got, expected);
        assert_eq!(soc.violations(), 0);
        assert!(soc.utilization("acc").unwrap() > 0.0);
    }

    #[test]
    fn two_stage_pipeline_with_relays() {
        let mut b = SocBuilder::new();
        let first = b.add_ip(
            "first",
            Box::new(AccumulatorPearl::new("a1", 1, 1, 1)),
            WrapperKind::Sp,
        );
        let second = b.add_ip(
            "second",
            Box::new(AccumulatorPearl::new("a2", 1, 1, 1)),
            WrapperKind::Fsm(Default::default()),
        );
        b.feed("src", first.inputs[0], 1..=8, 0.2, 3);
        b.link(first.outputs[0], second.inputs[0], 3);
        b.capture("out", second.outputs[0], 0.1, 4);
        let mut soc = b.build();
        soc.run(400).unwrap();
        // first: running sums of 1..=8; second: running sums of those.
        let first_sums: Vec<u64> = (1..=8)
            .scan(0u64, |a, v| {
                *a += v;
                Some(*a)
            })
            .collect();
        let expected: Vec<u64> = first_sums
            .iter()
            .scan(0u64, |a, &v| {
                *a += v;
                Some(*a)
            })
            .collect();
        assert_eq!(soc.received("out"), expected);
        assert_eq!(soc.violations(), 0);
    }

    #[test]
    fn netlist_backed_ip_matches_behavioural() {
        let run_one = |hardware: bool| {
            let mut b = SocBuilder::new();
            let pearl = Box::new(AccumulatorPearl::new("acc", 1, 1, 3));
            let ip = if hardware {
                b.add_ip_netlist("acc", pearl, WrapperKind::Sp)
            } else {
                b.add_ip("acc", pearl, WrapperKind::Sp)
            };
            b.feed("src", ip.inputs[0], (1..=12).map(|v| v * 2), 0.3, 9);
            b.capture("out", ip.outputs[0], 0.2, 10);
            let mut soc = b.build();
            soc.run(600).unwrap();
            assert_eq!(soc.violations(), 0);
            soc.received("out")
        };
        assert_eq!(run_one(false), run_one(true));
    }

    #[test]
    fn soc_traces_channels_to_vcd() {
        let mut b = SocBuilder::new();
        let ip = b.add_ip(
            "acc",
            Box::new(AccumulatorPearl::new("acc", 1, 1, 1)),
            WrapperKind::Sp,
        );
        b.watch_channel("in", ip.inputs[0]);
        b.watch_channel("out", ip.outputs[0]);
        b.feed("src", ip.inputs[0], 1..=3, 0.0, 1);
        b.capture("sink", ip.outputs[0], 0.0, 2);
        let mut soc = b.build();
        soc.run(30).unwrap();
        let vcd = soc.vcd("soc");
        assert!(vcd.contains("$var wire 32 ! in_data $end"));
        assert!(vcd.contains("out_void"));
        assert!(vcd.contains("#29"));
    }

    #[test]
    fn quiescence_detects_end_of_stream() {
        let mut b = SocBuilder::new();
        let ip = b.add_ip(
            "acc",
            Box::new(AccumulatorPearl::new("acc", 1, 1, 1)),
            WrapperKind::Sp,
        );
        b.feed("src", ip.inputs[0], 1..=5, 0.0, 1);
        b.capture("out", ip.outputs[0], 0.0, 2);
        let mut soc = b.build();
        let executed = soc.run_until_quiescent(10_000, 20).unwrap();
        assert!(executed < 10_000, "must quiesce well before the budget");
        assert_eq!(soc.received("out").len(), 5, "all work done first");
        assert!(soc.progress() >= 5);
    }

    #[test]
    fn quiescence_exposes_comb_wrapper_deadlock() {
        // Two-input pearl, but only one port is fed: the comb wrapper
        // deadlocks immediately; quiescence detection reports it.
        let mut b = SocBuilder::new();
        let ip = b.add_ip(
            "acc",
            Box::new(AccumulatorPearl::new("acc", 2, 1, 1)),
            WrapperKind::Comb,
        );
        b.feed("src", ip.inputs[0], 1..=100, 0.0, 1);
        b.capture("out", ip.outputs[0], 0.0, 2);
        let mut soc = b.build();
        let executed = soc.run_until_quiescent(5_000, 30).unwrap();
        assert!(executed < 200, "deadlock should be caught quickly");
        assert!(soc.received("out").is_empty());
    }

    #[test]
    fn latency_insensitivity_across_relay_counts() {
        let reference: Vec<u64> = {
            let (mut soc, sink) = accumulator_soc(WrapperKind::Sp);
            soc.run(200).unwrap();
            soc.received(sink)
        };
        for relays in [1usize, 2, 5, 8] {
            let mut b = SocBuilder::new();
            let ip = b.add_ip(
                "acc",
                Box::new(AccumulatorPearl::new("acc", 1, 1, 2)),
                WrapperKind::Sp,
            );
            // Source feeds a staging channel linked through relays.
            let stage = b.channel("stage", 32);
            b.feed("src", stage, 1..=10, 0.0, 1);
            b.link(stage, ip.inputs[0], relays);
            b.capture("out", ip.outputs[0], 0.0, 2);
            let mut soc = b.build();
            soc.run(300).unwrap();
            assert_eq!(
                soc.received("out"),
                reference,
                "{relays} relay stations must not change the informative stream"
            );
            assert_eq!(soc.violations(), 0);
        }
    }
}

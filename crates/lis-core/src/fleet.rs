//! Scenario fleets: many independent traffic scenarios of the *same*
//! SoC, lane-batched through one shared levelized instruction stream.
//!
//! A **lane** is one complete scenario — its own source seeds, stall
//! schedules and back-pressure pattern. A [`FleetBuilder`] assembles up
//! to [`LANES`] lanes into one [`FleetBatch`] built entirely from
//! *packed* plumbing: channels are [`PackedLisChannel`]s (one bit-plane
//! signal per data bit, lane `k` in bit `k`), links are
//! [`PackedRelayStation`] chains, endpoints are [`PackedTokenSource`] /
//! [`PackedTokenSink`], and gate-level shells are instantiated *once
//! per node* as a [`lis_wrappers::PackedFullNetlistPatientProcess`].
//! One bitwise op advances all 64 lanes of a component at once, so a
//! batch costs barely more than a solo run. Behavioural wrappers stay
//! scalar per lane (their state is cheap) and are bridged onto the
//! packed fabric with [`LaneDemux`] / [`LaneMux`].
//!
//! A [`SocFleet`] owns a sequence of batches and fans whole batches
//! across the work-stealing [`WorkStealingPool`].
//!
//! The correctness bar is strict: lane `k` of a fleet is bit-identical
//! (streams, checksums, violation counts) to a solo [`crate::Soc`] run
//! with the same seeds, at any thread count.

use lis_proto::{
    LaneDemux, LaneMux, LisChannel, PackedLisChannel, PackedRelayStation, PackedTokenSink,
    PackedTokenSource, PackedWire, Pearl, StallPattern, ViolationCounter,
};
use lis_sim::{SettleMode, SimError, System, SystemCheckpoint, WorkStealingPool, LANES};
use lis_wrappers::{
    wrap_pearl, wrap_pearl_full_netlist, wrap_pearls_packed_full_netlist, SyncPolicy,
};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Handle to an encapsulated IP inside a [`FleetBuilder`]: the same
/// shape as [`crate::IpHandle`], with packed channels carrying every
/// lane of a port at once.
#[derive(Debug, Clone)]
pub struct FleetIpHandle {
    /// Instance name.
    pub name: String,
    /// Input channels, one packed channel per pearl input port.
    pub inputs: Vec<PackedLisChannel>,
    /// Output channels, one packed channel per pearl output port.
    pub outputs: Vec<PackedLisChannel>,
}

/// Incremental constructor for one lane-batched [`FleetBatch`] of up to
/// [`LANES`] scenarios.
///
/// Mirrors [`crate::SocBuilder`] operation for operation; the lane
/// dimension lives inside the packed channels, so fleet topologies are
/// declared exactly like solo ones.
#[derive(Debug)]
pub struct FleetBuilder {
    lanes: usize,
    system: System,
    violations: Vec<ViolationCounter>,
    sinks: HashMap<String, Vec<Arc<Mutex<Vec<u64>>>>>,
}

impl FleetBuilder {
    /// Starts an empty fleet batch of `lanes` scenarios.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= lanes <= LANES`.
    pub fn new(lanes: usize) -> Self {
        assert!(
            (1..=LANES).contains(&lanes),
            "a fleet batch holds 1..={LANES} lanes, got {lanes}"
        );
        FleetBuilder {
            lanes,
            system: System::new(),
            violations: (0..lanes).map(|_| ViolationCounter::new()).collect(),
            sinks: HashMap::new(),
        }
    }

    /// Number of lanes in this batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Encapsulates one pearl per lane behind the *complete* gate-level
    /// shell, executed as a single packed 64-lane netlist shared by
    /// every lane.
    ///
    /// # Panics
    ///
    /// Panics if `pearls.len() != lanes`, the pearls disagree on
    /// interface shape, or wrapper generation fails.
    pub fn add_ip_full_netlist(
        &mut self,
        name: impl Into<String>,
        pearls: Vec<Box<dyn Pearl>>,
        kind: lis_wrappers::WrapperKind,
    ) -> FleetIpHandle {
        let controller = kind
            .generate_netlist(pearls[0].schedule())
            .expect("wrapper generation failed");
        self.add_ip_full_netlist_with_controller(name, pearls, controller)
    }

    /// As [`FleetBuilder::add_ip_full_netlist`] with an explicit
    /// controller netlist (e.g. an uncompressed SP program).
    ///
    /// # Panics
    ///
    /// As [`FleetBuilder::add_ip_full_netlist`].
    pub fn add_ip_full_netlist_with_controller(
        &mut self,
        name: impl Into<String>,
        pearls: Vec<Box<dyn Pearl>>,
        controller: lis_netlist::Module,
    ) -> FleetIpHandle {
        let name = name.into();
        assert_eq!(pearls.len(), self.lanes, "one pearl per lane");
        let (inputs, outputs) = wrap_pearls_packed_full_netlist(
            &mut self.system,
            &name,
            pearls,
            controller,
            &self.violations,
        );
        FleetIpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Bridges per-lane scalar port channels onto one packed channel
    /// per port: a [`LaneDemux`] fans each packed input out to the
    /// lanes, a [`LaneMux`] gathers each output. Both are zero-latency,
    /// so lane streams stay bit-identical to their solo twins.
    fn bridge_lanes(
        &mut self,
        name: &str,
        lane_inputs: Vec<Vec<LisChannel>>,
        lane_outputs: Vec<Vec<LisChannel>>,
    ) -> (Vec<PackedLisChannel>, Vec<PackedLisChannel>) {
        let in_ports = lane_inputs[0].len();
        let out_ports = lane_outputs[0].len();
        let inputs: Vec<PackedLisChannel> = (0..in_ports)
            .map(|p| {
                let width = lane_inputs[0][p].width;
                let packed =
                    PackedLisChannel::new(&mut self.system, &format!("{name}_in{p}"), width);
                let lanes = lane_inputs.iter().map(|l| l[p]).collect();
                self.system.add_component(LaneDemux::new(
                    format!("{name}_dx{p}"),
                    packed.clone(),
                    lanes,
                ));
                packed
            })
            .collect();
        let outputs: Vec<PackedLisChannel> = (0..out_ports)
            .map(|p| {
                let width = lane_outputs[0][p].width;
                let packed =
                    PackedLisChannel::new(&mut self.system, &format!("{name}_out{p}"), width);
                let lanes = lane_outputs.iter().map(|l| l[p]).collect();
                self.system.add_component(LaneMux::new(
                    format!("{name}_mx{p}"),
                    lanes,
                    packed.clone(),
                ));
                packed
            })
            .collect();
        (inputs, outputs)
    }

    /// Encapsulates one pearl per lane behind *behavioural* wrappers —
    /// one scalar patient process per lane (behavioural state is cheap
    /// to replicate), bridged onto packed port channels.
    ///
    /// # Panics
    ///
    /// Panics if `pearls.len() != lanes`.
    pub fn add_ip(
        &mut self,
        name: impl Into<String>,
        pearls: Vec<Box<dyn Pearl>>,
        kind: lis_wrappers::WrapperKind,
    ) -> FleetIpHandle {
        let name = name.into();
        assert_eq!(pearls.len(), self.lanes, "one pearl per lane");
        let mut lane_inputs = Vec::with_capacity(self.lanes);
        let mut lane_outputs = Vec::with_capacity(self.lanes);
        for (lane, pearl) in pearls.into_iter().enumerate() {
            let policy = kind.make_policy(pearl.schedule());
            let (ins, outs, _stats) = wrap_pearl(
                &mut self.system,
                &format!("{name}_l{lane}"),
                pearl,
                policy,
                &self.violations[lane],
            );
            lane_inputs.push(ins);
            lane_outputs.push(outs);
        }
        let (inputs, outputs) = self.bridge_lanes(&name, lane_inputs, lane_outputs);
        FleetIpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Encapsulates one pearl per lane behind *behavioural* wrappers
    /// with an explicit synchronization policy per lane (e.g.
    /// uncompressed SP programs) — the fleet analogue of
    /// [`crate::SocBuilder::add_ip_with_policy`].
    ///
    /// # Panics
    ///
    /// Panics if `pearls` or `policies` do not hold one entry per lane.
    pub fn add_ip_with_policies(
        &mut self,
        name: impl Into<String>,
        pearls: Vec<Box<dyn Pearl>>,
        policies: Vec<Box<dyn SyncPolicy>>,
    ) -> FleetIpHandle {
        let name = name.into();
        assert_eq!(pearls.len(), self.lanes, "one pearl per lane");
        assert_eq!(policies.len(), self.lanes, "one policy per lane");
        let mut lane_inputs = Vec::with_capacity(self.lanes);
        let mut lane_outputs = Vec::with_capacity(self.lanes);
        for (lane, (pearl, policy)) in pearls.into_iter().zip(policies).enumerate() {
            let (ins, outs, _stats) = wrap_pearl(
                &mut self.system,
                &format!("{name}_l{lane}"),
                pearl,
                policy,
                &self.violations[lane],
            );
            lane_inputs.push(ins);
            lane_outputs.push(outs);
        }
        let (inputs, outputs) = self.bridge_lanes(&name, lane_inputs, lane_outputs);
        FleetIpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Encapsulates one pearl per lane behind per-lane *scalar*
    /// gate-level shells — the unbatched reference the packed variant is
    /// benchmarked against.
    ///
    /// # Panics
    ///
    /// Panics if `pearls.len() != lanes` or wrapper generation fails.
    pub fn add_ip_full_netlist_scalar(
        &mut self,
        name: impl Into<String>,
        pearls: Vec<Box<dyn Pearl>>,
        kind: lis_wrappers::WrapperKind,
    ) -> FleetIpHandle {
        let name = name.into();
        assert_eq!(pearls.len(), self.lanes, "one pearl per lane");
        let mut lane_inputs = Vec::with_capacity(self.lanes);
        let mut lane_outputs = Vec::with_capacity(self.lanes);
        for (lane, pearl) in pearls.into_iter().enumerate() {
            let controller = kind
                .generate_netlist(pearl.schedule())
                .expect("wrapper generation failed");
            let (ins, outs) = wrap_pearl_full_netlist(
                &mut self.system,
                &format!("{name}_l{lane}"),
                pearl,
                controller,
                &self.violations[lane],
            );
            lane_inputs.push(ins);
            lane_outputs.push(outs);
        }
        let (inputs, outputs) = self.bridge_lanes(&name, lane_inputs, lane_outputs);
        FleetIpHandle {
            name,
            inputs,
            outputs,
        }
    }

    /// Allocates a free-standing packed staging channel carrying every
    /// lane.
    pub fn channel(&mut self, name: &str, width: u32) -> PackedLisChannel {
        PackedLisChannel::new(&mut self.system, name, width)
    }

    /// Connects `from` to `to` through `relay_count` packed relay
    /// stations, exactly as [`crate::SocBuilder::link`] does for a solo
    /// SoC — one relay chain carries all lanes.
    pub fn link(&mut self, from: &PackedLisChannel, to: &PackedLisChannel, relay_count: usize) {
        let tail = PackedRelayStation::chain(
            &mut self.system,
            "link",
            from.clone(),
            relay_count,
            &self.violations,
        );
        let n = self.system.component_count();
        self.system
            .add_component(PackedWire::new(format!("wire{n}"), tail, to.clone()));
    }

    /// Attaches one packed token source. `per_lane(k)` supplies lane
    /// `k`'s token stream, stall pattern and seed — the axis along which
    /// scenarios diverge.
    pub fn feed(
        &mut self,
        name: impl Into<String>,
        channel: &PackedLisChannel,
        mut per_lane: impl FnMut(usize) -> (Vec<u64>, StallPattern, u64),
    ) {
        let lanes = (0..self.lanes).map(&mut per_lane).collect();
        self.system
            .add_component(PackedTokenSource::new(name.into(), channel.clone(), lanes));
    }

    /// Attaches one packed recording sink; lane `k`'s stream is
    /// retrievable as [`FleetBatch::received`]`(name, k)`. `per_lane(k)`
    /// supplies lane `k`'s back-pressure pattern and seed.
    pub fn capture(
        &mut self,
        name: impl Into<String>,
        channel: &PackedLisChannel,
        mut per_lane: impl FnMut(usize) -> (StallPattern, u64),
    ) {
        let name = name.into();
        let sink = PackedTokenSink::new(
            name.clone(),
            channel.clone(),
            (0..self.lanes).map(&mut per_lane).collect(),
        );
        let handles = (0..self.lanes).map(|l| sink.received(l)).collect();
        self.system.add_component(sink);
        self.sinks.insert(name, handles);
    }

    /// Sets the settle strategy of the underlying [`System`].
    pub fn set_settle_mode(&mut self, mode: SettleMode) {
        self.system.set_settle_mode(mode);
    }

    /// Sets the evaluation thread count of the underlying [`System`]
    /// (fleets usually pin 1: parallelism comes from fanning batches
    /// across the pool, not from sharding one batch).
    pub fn set_threads(&mut self, threads: usize) {
        self.system.set_threads(threads);
    }

    /// Mutable access to the underlying [`System`].
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }

    /// Finalizes the batch.
    pub fn build(self) -> FleetBatch {
        FleetBatch {
            system: self.system,
            lanes: self.lanes,
            violations: self.violations,
            sinks: self.sinks,
        }
    }
}

/// One runnable batch of up to [`LANES`] lane-parallel scenarios.
#[derive(Debug)]
pub struct FleetBatch {
    system: System,
    lanes: usize,
    violations: Vec<ViolationCounter>,
    sinks: HashMap<String, Vec<Arc<Mutex<Vec<u64>>>>>,
}

impl FleetBatch {
    /// Number of lanes in this batch.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Runs `cycles` clock cycles (all lanes advance in lockstep;
    /// quiescent spans are fast-forwarded exactly as in
    /// [`crate::Soc::run`]).
    ///
    /// # Errors
    ///
    /// Propagates [`SimError`] (combinational-loop detection).
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        let target = self.system.cycle() + cycles;
        while self.system.cycle() < target {
            self.system.settle()?;
            self.system.step()?;
            self.system.fast_forward(target);
        }
        Ok(())
    }

    /// Elapsed cycles.
    pub fn cycle(&self) -> u64 {
        self.system.cycle()
    }

    /// The informative stream lane `lane` received at sink `name` so
    /// far.
    ///
    /// # Panics
    ///
    /// Panics if no sink has that name or the lane is out of range.
    pub fn received(&self, name: &str, lane: usize) -> Vec<u64> {
        self.sinks
            .get(name)
            .unwrap_or_else(|| panic!("no sink named {name}"))[lane]
            .lock()
            .unwrap()
            .clone()
    }

    /// Protocol violations lane `lane` observed so far.
    ///
    /// # Panics
    ///
    /// Panics if the lane is out of range.
    pub fn violations(&self, lane: usize) -> u64 {
        self.violations[lane].count()
    }

    /// Captures the batch's architectural state (every lane at once —
    /// lanes share the cycle counter by construction).
    pub fn checkpoint(&self) -> SystemCheckpoint {
        self.system.checkpoint()
    }

    /// Restores state captured by [`FleetBatch::checkpoint`] into a
    /// batch built identically.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint shape mismatches this batch.
    pub fn restore(&mut self, checkpoint: &SystemCheckpoint) {
        self.system.restore(checkpoint);
    }

    /// The underlying simulation system.
    pub fn system(&self) -> &System {
        &self.system
    }

    /// Mutable access to the underlying system.
    pub fn system_mut(&mut self) -> &mut System {
        &mut self.system
    }
}

/// A serializable snapshot of a whole [`SocFleet`] — one
/// [`SystemCheckpoint`] per batch. Survives a process restart through
/// the vendored serde and resumes bit-identically.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetCheckpoint {
    /// Per-batch snapshots, in batch order.
    pub batches: Vec<SystemCheckpoint>,
}

/// A fleet of scenario batches: N independent scenarios packed into
/// `ceil(N / LANES)` lane-batched [`FleetBatch`]es, advanced together.
///
/// Whole batches fan out across a [`WorkStealingPool`]; each batch runs
/// single-threaded inside its job, so results are bit-identical at any
/// pool width.
#[derive(Debug)]
pub struct SocFleet {
    batches: Vec<FleetBatch>,
    lanes: usize,
}

impl SocFleet {
    /// Assembles a fleet from finalized batches.
    ///
    /// # Panics
    ///
    /// Panics if `batches` is empty.
    pub fn new(batches: Vec<FleetBatch>) -> Self {
        assert!(!batches.is_empty(), "a fleet needs at least one batch");
        let lanes = batches.iter().map(FleetBatch::lanes).sum();
        SocFleet { batches, lanes }
    }

    /// Total scenario lanes across all batches.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of batches.
    pub fn batch_count(&self) -> usize {
        self.batches.len()
    }

    /// The batches, for direct inspection.
    pub fn batches(&self) -> &[FleetBatch] {
        &self.batches
    }

    /// Mutable access to the batches.
    pub fn batches_mut(&mut self) -> &mut [FleetBatch] {
        &mut self.batches
    }

    fn locate(&self, lane: usize) -> (usize, usize) {
        let mut remaining = lane;
        for (b, batch) in self.batches.iter().enumerate() {
            if remaining < batch.lanes() {
                return (b, remaining);
            }
            remaining -= batch.lanes();
        }
        panic!("lane {lane} out of range ({} lanes)", self.lanes);
    }

    /// Runs every batch for `cycles` cycles, fanning whole batches
    /// across `pool`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`SimError`] any batch hit (every batch
    /// still completes its run attempt).
    pub fn run(&mut self, cycles: u64, pool: &WorkStealingPool) -> Result<(), SimError> {
        let results = pool.map(
            self.batches.iter_mut().collect(),
            |batch: &mut FleetBatch| batch.run(cycles),
        );
        results.into_iter().collect()
    }

    /// The informative stream scenario `lane` received at sink `name`.
    ///
    /// # Panics
    ///
    /// Panics if no sink has that name or the lane is out of range.
    pub fn received(&self, name: &str, lane: usize) -> Vec<u64> {
        let (b, l) = self.locate(lane);
        self.batches[b].received(name, l)
    }

    /// Protocol violations scenario `lane` observed.
    ///
    /// # Panics
    ///
    /// Panics if the lane is out of range.
    pub fn violations(&self, lane: usize) -> u64 {
        let (b, l) = self.locate(lane);
        self.batches[b].violations(l)
    }

    /// Elapsed cycles (batches advance in lockstep; the first batch is
    /// authoritative).
    pub fn cycle(&self) -> u64 {
        self.batches[0].cycle()
    }

    /// Captures every batch's architectural state.
    pub fn checkpoint(&self) -> FleetCheckpoint {
        FleetCheckpoint {
            batches: self.batches.iter().map(FleetBatch::checkpoint).collect(),
        }
    }

    /// Restores state captured by [`SocFleet::checkpoint`] into a fleet
    /// built identically.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's batch count or any batch shape
    /// mismatches this fleet.
    pub fn restore(&mut self, checkpoint: &FleetCheckpoint) {
        assert_eq!(
            checkpoint.batches.len(),
            self.batches.len(),
            "fleet restore: batch count mismatch"
        );
        for (batch, snap) in self.batches.iter_mut().zip(&checkpoint.batches) {
            batch.restore(snap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SocBuilder;
    use lis_proto::AccumulatorPearl;
    use lis_wrappers::WrapperKind;

    fn lane_pearls(lanes: usize) -> Vec<Box<dyn Pearl>> {
        (0..lanes)
            .map(|_| Box::new(AccumulatorPearl::new("acc", 1, 1, 2)) as Box<dyn Pearl>)
            .collect()
    }

    fn lane_stall(lane: usize) -> f64 {
        [0.0, 0.35, 0.2, 0.5][lane % 4]
    }

    /// Builds a `lanes`-wide single-IP fleet batch where each lane
    /// carries its own seed and stall probability.
    fn build_batch(lanes: usize, gate_level: bool) -> FleetBatch {
        let mut b = FleetBuilder::new(lanes);
        b.set_threads(1);
        let ip = if gate_level {
            b.add_ip_full_netlist("acc", lane_pearls(lanes), WrapperKind::Sp)
        } else {
            b.add_ip("acc", lane_pearls(lanes), WrapperKind::Sp)
        };
        b.feed("src", &ip.inputs[0], |lane| {
            (
                (1..=10u64).map(|v| v * (lane as u64 + 1)).collect(),
                StallPattern::from(lane_stall(lane)),
                100 + lane as u64,
            )
        });
        b.capture("out", &ip.outputs[0], |lane| {
            (StallPattern::from(lane_stall(lane + 1)), 200 + lane as u64)
        });
        b.build()
    }

    /// The solo twin of lane `lane` from [`build_batch`].
    fn solo_received(lane: usize, gate_level: bool) -> (Vec<u64>, u64) {
        let mut b = SocBuilder::new();
        b.set_threads(1);
        let pearl = Box::new(AccumulatorPearl::new("acc", 1, 1, 2));
        let ip = if gate_level {
            b.add_ip_full_netlist("acc", pearl, WrapperKind::Sp)
        } else {
            b.add_ip("acc", pearl, WrapperKind::Sp)
        };
        b.feed(
            "src",
            ip.inputs[0],
            (1..=10u64).map(|v| v * (lane as u64 + 1)),
            lane_stall(lane),
            100 + lane as u64,
        );
        b.capture(
            "out",
            ip.outputs[0],
            lane_stall(lane + 1),
            200 + lane as u64,
        );
        let mut soc = b.build();
        soc.run(400).unwrap();
        (soc.received("out"), soc.violations())
    }

    #[test]
    fn gate_level_fleet_lanes_match_solo_socs() {
        let mut batch = build_batch(5, true);
        batch.run(400).unwrap();
        for lane in 0..5 {
            let (want, solo_violations) = solo_received(lane, true);
            assert!(!want.is_empty());
            assert_eq!(batch.received("out", lane), want, "lane {lane}");
            assert_eq!(batch.violations(lane), solo_violations, "lane {lane}");
        }
    }

    #[test]
    fn behavioural_fleet_lanes_match_solo_socs() {
        let mut batch = build_batch(4, false);
        batch.run(400).unwrap();
        for lane in 0..4 {
            let (want, _) = solo_received(lane, false);
            assert_eq!(batch.received("out", lane), want, "lane {lane}");
        }
    }

    #[test]
    fn fleet_spans_batches_and_runs_on_pool() {
        // 7 lanes over two batches of 4 + 3; lane addressing must cross
        // the batch boundary transparently.
        let batches = vec![build_batch(4, true), {
            // Second batch: lanes 4..7 reuse the same per-lane recipe
            // shifted by 4 so each global lane has a distinct scenario.
            let lanes = 3;
            let mut b = FleetBuilder::new(lanes);
            b.set_threads(1);
            let ip = b.add_ip_full_netlist("acc", lane_pearls(lanes), WrapperKind::Sp);
            b.feed("src", &ip.inputs[0], |l| {
                let lane = l + 4;
                (
                    (1..=10u64).map(|v| v * (lane as u64 + 1)).collect(),
                    StallPattern::from(lane_stall(lane)),
                    100 + lane as u64,
                )
            });
            b.capture("out", &ip.outputs[0], |l| {
                let lane = l + 4;
                (StallPattern::from(lane_stall(lane + 1)), 200 + lane as u64)
            });
            b.build()
        }];
        let mut fleet = SocFleet::new(batches);
        assert_eq!(fleet.lanes(), 7);
        let pool = WorkStealingPool::new(2);
        fleet.run(400, &pool).unwrap();
        for lane in 0..7 {
            let (want, _) = solo_received(lane, true);
            assert_eq!(fleet.received("out", lane), want, "lane {lane}");
            assert_eq!(fleet.violations(lane), 0, "lane {lane}");
        }
        assert_eq!(fleet.cycle(), 400);
    }

    #[test]
    fn fleet_checkpoint_restores_bit_identically() {
        // Uninterrupted reference.
        let mut reference = SocFleet::new(vec![build_batch(3, true)]);
        let pool = WorkStealingPool::new(1);
        reference.run(300, &pool).unwrap();
        // Interrupted twin: snapshot at 120, restore into a fresh fleet.
        let mut first = SocFleet::new(vec![build_batch(3, true)]);
        first.run(120, &pool).unwrap();
        let snap = first.checkpoint();
        let mut resumed = SocFleet::new(vec![build_batch(3, true)]);
        resumed.restore(&snap);
        assert_eq!(resumed.cycle(), 120);
        resumed.run(180, &pool).unwrap();
        for lane in 0..3 {
            assert_eq!(
                resumed.received("out", lane),
                reference.received("out", lane),
                "lane {lane}"
            );
        }
    }
}

//! Tokens: the items travelling on latency-insensitive channels.

use std::fmt;

/// One cycle's worth of traffic on a LIS channel: either an informative
/// datum or the void token `τ` (a stalling move in Carloni's theory).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// An informative event carrying a datum.
    Data(u64),
    /// The non-informative (void / τ) event.
    Void,
}

impl Token {
    /// Whether the token is informative.
    pub fn is_data(self) -> bool {
        matches!(self, Token::Data(_))
    }

    /// Whether the token is void.
    pub fn is_void(self) -> bool {
        matches!(self, Token::Void)
    }

    /// The datum, if informative.
    pub fn data(self) -> Option<u64> {
        match self {
            Token::Data(v) => Some(v),
            Token::Void => None,
        }
    }

    /// Encodes as `(data_value, void_flag)` signal values.
    pub fn to_wires(self) -> (u64, bool) {
        match self {
            Token::Data(v) => (v, false),
            Token::Void => (0, true),
        }
    }

    /// Decodes from `(data_value, void_flag)` signal values.
    pub fn from_wires(data: u64, void: bool) -> Self {
        if void {
            Token::Void
        } else {
            Token::Data(data)
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Data(v) => write!(f, "{v}"),
            Token::Void => write!(f, "τ"),
        }
    }
}

impl From<u64> for Token {
    fn from(v: u64) -> Self {
        Token::Data(v)
    }
}

/// Extracts the informative subsequence of a token stream — the basis of
/// *latency equivalence*: two streams are latency-equivalent iff their
/// informative subsequences are equal (Carloni et al., 2001).
pub fn informative(stream: impl IntoIterator<Item = Token>) -> Vec<u64> {
    stream.into_iter().filter_map(Token::data).collect()
}

/// Whether two token streams are latency-equivalent.
pub fn latency_equivalent(
    a: impl IntoIterator<Item = Token>,
    b: impl IntoIterator<Item = Token>,
) -> bool {
    informative(a) == informative(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_round_trip() {
        assert_eq!(Token::from_wires(7, false), Token::Data(7));
        assert_eq!(Token::from_wires(7, true), Token::Void);
        assert_eq!(Token::Data(9).to_wires(), (9, false));
        assert_eq!(Token::Void.to_wires(), (0, true));
    }

    #[test]
    fn informative_filters_voids() {
        let s = vec![Token::Void, Token::Data(1), Token::Void, Token::Data(2)];
        assert_eq!(informative(s), vec![1, 2]);
    }

    #[test]
    fn latency_equivalence_ignores_stalls() {
        let a = vec![Token::Data(1), Token::Void, Token::Data(2)];
        let b = vec![Token::Void, Token::Void, Token::Data(1), Token::Data(2)];
        let c = vec![Token::Data(1), Token::Data(3)];
        assert!(latency_equivalent(a.clone(), b));
        assert!(!latency_equivalent(a, c));
    }

    #[test]
    fn display_and_accessors() {
        assert_eq!(Token::Data(5).to_string(), "5");
        assert_eq!(Token::Void.to_string(), "τ");
        assert!(Token::Data(0).is_data());
        assert!(Token::Void.is_void());
        assert_eq!(Token::from(4u64).data(), Some(4));
    }
}

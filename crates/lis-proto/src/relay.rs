//! Relay stations: the buffered repeaters that segment long wires.
//!
//! A relay station is a 2-place buffer speaking the LIS protocol
//! (Carloni et al.): one main register on the through path and one
//! auxiliary register that absorbs the single token which may still be in
//! flight when back-pressure is asserted (the `stop` wire is registered,
//! so upstream learns about a stall one cycle late). Inserting `k` relay
//! stations on a channel gives it `k` cycles of latency — the physical
//!-wire-pipelining move the whole LIS methodology exists to legalize.

use crate::channel::LisChannel;
use crate::token::Token;
use lis_sim::{Activity, Component, Ports, SignalView, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared flag counting protocol violations (token overflow) observed by
/// relay stations and port adapters. A correct system never increments
/// it; tests assert it stays zero.
#[derive(Debug, Clone, Default)]
pub struct ViolationCounter(Arc<AtomicU64>);

impl ViolationCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current violation count.
    pub fn count(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Records one violation.
    pub fn record(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }
}

/// A 2-place relay station between an upstream and a downstream channel
/// segment.
#[derive(Debug)]
pub struct RelayStation {
    name: String,
    upstream: LisChannel,
    downstream: LisChannel,
    /// Through register (drives the downstream segment).
    main: Option<u64>,
    /// Overflow register (absorbs the in-flight token during a stall).
    aux: Option<u64>,
    /// Registered back-pressure towards upstream.
    stop_up: bool,
    violations: ViolationCounter,
}

impl RelayStation {
    /// Creates a relay station forwarding `upstream` to `downstream`.
    pub fn new(
        name: impl Into<String>,
        upstream: LisChannel,
        downstream: LisChannel,
        violations: ViolationCounter,
    ) -> Self {
        RelayStation {
            name: name.into(),
            upstream,
            downstream,
            main: None,
            aux: None,
            stop_up: false,
            violations,
        }
    }

    /// Inserts `count` relay stations between `from` and `to` in
    /// `system`, returning the channel that now plays the role of `to`'s
    /// source.
    ///
    /// With `count == 0` the two channels are distinct wires; the caller
    /// should simply use `from` directly instead.
    pub fn chain(
        system: &mut System,
        name: &str,
        from: LisChannel,
        count: usize,
        violations: &ViolationCounter,
    ) -> LisChannel {
        let mut current = from;
        for i in 0..count {
            let next = LisChannel::new(system, &format!("{name}_seg{i}"), from.width);
            system.add_component(RelayStation::new(
                format!("{name}_rs{i}"),
                current,
                next,
                violations.clone(),
            ));
            current = next;
        }
        current
    }

    /// Number of tokens currently buffered (0..=2), for diagnostics.
    pub fn occupancy(&self) -> usize {
        usize::from(self.main.is_some()) + usize::from(self.aux.is_some())
    }
}

impl Component for RelayStation {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        // Both faces are registered: the main register drives
        // downstream, the stop register drives upstream.
        self.downstream
            .producer_ports()
            .merge(self.upstream.consumer_ports())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        // Downstream sees the main register; upstream sees registered stop.
        let out = match self.main {
            Some(v) => Token::Data(v),
            None => Token::Void,
        };
        self.downstream.write_token(sigs, out);
        self.upstream.write_stop(sigs, self.stop_up);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        // A token transfers only on cycles where we presented stop = 0;
        // while stop is up the producer re-presents the same token, which
        // must not be absorbed twice.
        let incoming = if self.stop_up {
            None
        } else {
            self.upstream.read_token(sigs).data()
        };
        let stalled = self.downstream.read_stop(sigs);
        let mut changed = false;

        // 1. Downstream consumes main unless it stalls.
        if !stalled && self.main.is_some() {
            self.main = None;
            changed = true;
        }
        // 2. Aux backfills the through register.
        if self.main.is_none() && self.aux.is_some() {
            self.main = self.aux.take();
            changed = true;
        }
        // 3. Absorb the incoming token.
        if let Some(v) = incoming {
            changed = true;
            if self.main.is_none() {
                self.main = Some(v);
            } else if self.aux.is_none() {
                self.aux = Some(v);
            } else {
                // Upstream ignored our stop: token lost.
                self.violations.record();
            }
        }
        // 4. Back-pressure upstream while the overflow slot is in use.
        let stop = self.aux.is_some();
        changed |= stop != self.stop_up;
        self.stop_up = stop;
        // A stalled relay with no token movement is exactly the state a
        // back-pressured mesh spends most of its cycles in — report it
        // quiescent so deep relay chains get skipped, not recomputed.
        Activity::from_changed(changed)
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        // Option<u64> encoded as a presence flag + value.
        out.push(self.main.is_some() as u64);
        out.push(self.main.unwrap_or(0));
        out.push(self.aux.is_some() as u64);
        out.push(self.aux.unwrap_or(0));
        out.push(self.stop_up as u64);
    }

    fn load_state(&mut self, data: &[u64]) {
        self.main = (data[0] != 0).then_some(data[1]);
        self.aux = (data[2] != 0).then_some(data[3]);
        self.stop_up = data[4] != 0;
    }
}

/// The degenerate "relay station" of Casu & Macchiarulo's approach: a
/// plain flip-flop with no protocol wires. Forwards `data`/`void`
/// verbatim with one cycle of delay and **ignores back-pressure** —
/// correct only under a perfectly regular static schedule, which is
/// exactly the limitation the ablation experiment (E6) demonstrates.
#[derive(Debug)]
pub struct PlainRegisterStage {
    name: String,
    upstream: LisChannel,
    downstream: LisChannel,
    held: Token,
}

impl PlainRegisterStage {
    /// Creates a register stage forwarding `upstream` to `downstream`.
    pub fn new(name: impl Into<String>, upstream: LisChannel, downstream: LisChannel) -> Self {
        PlainRegisterStage {
            name: name.into(),
            upstream,
            downstream,
            held: Token::Void,
        }
    }
}

impl Component for PlainRegisterStage {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.downstream
            .producer_ports()
            .merge(self.upstream.consumer_ports())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        self.downstream.write_token(sigs, self.held);
        // Never back-pressures upstream.
        self.upstream.write_stop(sigs, false);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let next = self.upstream.read_token(sigs);
        let changed = next != self.held;
        self.held = next;
        Activity::from_changed(changed)
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.held.data().is_some() as u64);
        out.push(self.held.data().unwrap_or(0));
    }

    fn load_state(&mut self, data: &[u64]) {
        self.held = match data[0] {
            0 => Token::Void,
            _ => Token::Data(data[1]),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_sim::FnComponent;

    /// Drives a fixed token sequence, respecting stop.
    fn add_source(sys: &mut System, ch: LisChannel, tokens: Vec<u64>) {
        let queue = Arc::new(std::sync::Mutex::new(tokens));
        let q2 = Arc::clone(&queue);
        sys.add_component(FnComponent::new(
            "src",
            ch.producer_ports(),
            move |sigs: &mut SignalView<'_>| {
                let q = q2.lock().unwrap();
                let tok = q.first().map_or(Token::Void, |&v| Token::Data(v));
                ch.write_token(sigs, tok);
            },
            move |sigs: &SignalView<'_>| {
                let mut q = queue.lock().unwrap();
                if !ch.read_stop(sigs) && !q.is_empty() {
                    q.remove(0);
                }
            },
        ));
    }

    /// Collects informative tokens; stalls (asserts stop) on cycles given
    /// by `stall_pattern` (cyclic).
    fn add_sink(
        sys: &mut System,
        ch: LisChannel,
        stall_pattern: Vec<bool>,
    ) -> Arc<std::sync::Mutex<Vec<u64>>> {
        let got = Arc::new(std::sync::Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        let pattern = stall_pattern.clone();
        sys.add_component(FnComponent::new(
            "sink",
            ch.consumer_ports(),
            move |sigs: &mut SignalView<'_>| {
                let stall = pattern[t2.load(Ordering::Relaxed) as usize % pattern.len()];
                ch.write_stop(sigs, stall);
            },
            move |sigs: &SignalView<'_>| {
                let step = t.load(Ordering::Relaxed) as usize;
                let stall = stall_pattern[step % stall_pattern.len()];
                if !stall {
                    if let Token::Data(v) = ch.read_token(sigs) {
                        got2.lock().unwrap().push(v);
                    }
                }
                t.store(step as u64 + 1, Ordering::Relaxed);
            },
        ));
        got
    }

    #[test]
    fn relay_station_forwards_with_one_cycle_latency() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let a = LisChannel::new(&mut sys, "a", 8);
        let b = LisChannel::new(&mut sys, "b", 8);
        add_source(&mut sys, a, vec![1, 2, 3]);
        sys.add_component(RelayStation::new("rs", a, b, violations.clone()));
        let got = add_sink(&mut sys, b, vec![false]);
        sys.run(10).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(violations.count(), 0);
    }

    #[test]
    fn chain_of_relays_preserves_stream() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let a = LisChannel::new(&mut sys, "a", 8);
        add_source(&mut sys, a, (1..=20).collect());
        let out = RelayStation::chain(&mut sys, "ch", a, 5, &violations);
        let got = add_sink(&mut sys, out, vec![false]);
        sys.run(40).unwrap();
        assert_eq!(*got.lock().unwrap(), (1..=20).collect::<Vec<u64>>());
        assert_eq!(violations.count(), 0);
    }

    #[test]
    fn relay_station_survives_heavy_backpressure() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let a = LisChannel::new(&mut sys, "a", 8);
        add_source(&mut sys, a, (1..=30).collect());
        let out = RelayStation::chain(&mut sys, "ch", a, 3, &violations);
        // Sink stalls 2 of every 3 cycles.
        let got = add_sink(&mut sys, out, vec![true, true, false]);
        sys.run(200).unwrap();
        assert_eq!(*got.lock().unwrap(), (1..=30).collect::<Vec<u64>>());
        assert_eq!(violations.count(), 0, "no token may ever be dropped");
    }

    #[test]
    fn plain_register_stage_drops_tokens_under_backpressure() {
        let mut sys = System::new();
        let a = LisChannel::new(&mut sys, "a", 8);
        let b = LisChannel::new(&mut sys, "b", 8);
        add_source(&mut sys, a, (1..=10).collect());
        sys.add_component(PlainRegisterStage::new("ff", a, b));
        let got = add_sink(&mut sys, b, vec![false, true]);
        sys.run(40).unwrap();
        // The flip-flop ignores stop; the stalled sink misses tokens.
        assert!(
            got.lock().unwrap().len() < 10,
            "plain register must lose tokens under irregular consumption, got {:?}",
            got.lock().unwrap()
        );
    }
}

//! Adversary endpoints for bounded protocol exploration.
//!
//! A bounded model checker drives every input edge of a closed wrapper
//! configuration with an *adversary*: an endpoint whose stall decision
//! each cycle is a branch of the search tree, not a pseudo-random draw.
//! The endpoints here differ from [`crate::TokenSource`] /
//! [`crate::TokenSink`] in three deliberate ways:
//!
//! * **Bounded state.** They emit and expect sequence numbers modulo a
//!   small `modulus` and keep no cumulative history, so a saved lane
//!   state ([`lis_sim::Component::save_lane_state`]) is a few words and
//!   two states reached along different paths can collide in the
//!   explorer's hash set. Monotone progress (tokens delivered) is
//!   reported through *external* atomics that are deliberately outside
//!   the saved state.
//! * **External stall control.** [`StallControl::External`] reads a
//!   shared [`AtomicU64`] stall mask (bit *k* = lane *k*) that the
//!   explorer rewrites before every step, so one settle/tick pass
//!   expands up to 64 adversary branches at once.
//!   [`StallControl::Scripted`] replays a fixed schedule instead —
//!   the form a minimized counterexample is replayed with.
//! * **Order checking at the sink.** [`SeqSink`] checks delivery order
//!   directly: a skipped number is a dropped token, a repeated number a
//!   duplicated one. Violations land on a [`ViolationCounter`] so the
//!   explorer can diff counts across a single transition.

use crate::channel::LisChannel;
use crate::packed::PackedLisChannel;
use crate::relay::ViolationCounter;
use crate::token::Token;
use lis_sim::{Activity, Component, Ports, SignalView, LANES};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Where an adversary endpoint's per-cycle stall decision comes from.
#[derive(Debug, Clone)]
pub enum StallControl {
    /// The explorer owns the decision: before each step it stores a
    /// stall mask (bit *k* stalls lane *k*; scalar endpoints read bit
    /// 0). The mask must be stable for the whole settle/tick pass.
    External(Arc<AtomicU64>),
    /// A fixed schedule of stall masks, indexed by the endpoint's own
    /// tick counter; cycles beyond the script never stall. This is the
    /// replay form: a counterexample is a `Scripted` schedule per edge.
    Scripted(Vec<u64>),
}

impl StallControl {
    fn mask_at(&self, tick: u64) -> u64 {
        match self {
            StallControl::External(mask) => mask.load(Ordering::Relaxed),
            StallControl::Scripted(script) => script.get(tick as usize).copied().unwrap_or(0),
        }
    }

    /// Whether saved state must carry the tick counter (scripted
    /// schedules are cycle-indexed; external masks are not).
    fn scripted(&self) -> bool {
        matches!(self, StallControl::Scripted(_))
    }
}

// ---------------------------------------------------------------------
// Scalar adversaries.
// ---------------------------------------------------------------------

/// An adversary producer: emits the sequence `0, 1, …` modulo
/// `modulus` on its channel, holding (void) whenever its
/// [`StallControl`] says so. Advances past a number only when the
/// protocol transfer condition held (`stop == 0` and not stalled).
#[derive(Debug)]
pub struct SeqSource {
    name: String,
    channel: LisChannel,
    control: StallControl,
    modulus: u64,
    seq: u64,
    tick: u64,
}

impl SeqSource {
    /// Creates the source on `channel`. `modulus` bounds the sequence
    /// counter; it must exceed the closed configuration's total token
    /// capacity for the conservation ledger to be unambiguous.
    pub fn new(
        name: impl Into<String>,
        channel: LisChannel,
        control: StallControl,
        modulus: u64,
    ) -> Self {
        assert!(modulus >= 2, "sequence modulus must be at least 2");
        SeqSource {
            name: name.into(),
            channel,
            control,
            modulus,
            seq: 0,
            tick: 0,
        }
    }

    /// The next sequence number the source will emit.
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

impl Component for SeqSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.producer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let stalled = self.control.mask_at(self.tick) & 1 != 0;
        let tok = if stalled {
            Token::Void
        } else {
            Token::Data(self.seq)
        };
        self.channel.write_token(sigs, tok);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let stalled = self.control.mask_at(self.tick) & 1 != 0;
        if !stalled && !self.channel.read_stop(sigs) {
            self.seq = (self.seq + 1) % self.modulus;
        }
        self.tick += 1;
        // The kernel cannot observe the external mask changing, so an
        // adversary is never allowed to go quiescent.
        Activity::Active
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.seq);
        if self.control.scripted() {
            out.push(self.tick);
        }
    }

    fn load_state(&mut self, data: &[u64]) {
        self.seq = data[0];
        if self.control.scripted() {
            self.tick = data[1];
        }
    }
}

/// An adversary consumer: expects the sequence `0, 1, …` modulo
/// `modulus`, asserting `stop` whenever its [`StallControl`] says so.
///
/// Any deviation from the expected order — a skip (dropped token) or a
/// repeat (duplicated token) — is recorded on the order
/// [`ViolationCounter`]; after a mismatch the expectation resynchronizes
/// to `value + 1` so one fault is counted once, not once per subsequent
/// token. Every informative delivery bumps the external `delivered`
/// atomic, the monotone progress signal the deadlock check watches.
#[derive(Debug)]
pub struct SeqSink {
    name: String,
    channel: LisChannel,
    control: StallControl,
    modulus: u64,
    expect: u64,
    tick: u64,
    order_violations: ViolationCounter,
    delivered: Arc<AtomicU64>,
}

impl SeqSink {
    /// Creates the sink on `channel`; order faults land on
    /// `order_violations`.
    pub fn new(
        name: impl Into<String>,
        channel: LisChannel,
        control: StallControl,
        modulus: u64,
        order_violations: &ViolationCounter,
    ) -> Self {
        assert!(modulus >= 2, "sequence modulus must be at least 2");
        SeqSink {
            name: name.into(),
            channel,
            control,
            modulus,
            expect: 0,
            tick: 0,
            order_violations: order_violations.clone(),
            delivered: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The next sequence number the sink expects.
    pub fn expect(&self) -> u64 {
        self.expect
    }

    /// Shared handle to the monotone delivered-token counter.
    pub fn delivered(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.delivered)
    }
}

impl Component for SeqSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.consumer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let stalled = self.control.mask_at(self.tick) & 1 != 0;
        self.channel.write_stop(sigs, stalled);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let stalled = self.control.mask_at(self.tick) & 1 != 0;
        if !stalled {
            if let Token::Data(v) = self.channel.read_token(sigs) {
                if v != self.expect {
                    self.order_violations.record();
                    self.expect = (v + 1) % self.modulus;
                } else {
                    self.expect = (self.expect + 1) % self.modulus;
                }
                self.delivered.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.tick += 1;
        Activity::Active
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.expect);
        if self.control.scripted() {
            out.push(self.tick);
        }
    }

    fn load_state(&mut self, data: &[u64]) {
        self.expect = data[0];
        if self.control.scripted() {
            self.tick = data[1];
        }
    }
}

// ---------------------------------------------------------------------
// Packed (64-lane) adversaries.
// ---------------------------------------------------------------------

/// The packed twin of [`SeqSource`]: 64 independent sequence counters,
/// one per lane, stalled lane-wise by the control mask. Lanes outside
/// `active_mask` emit void forever (idle branches of a partially filled
/// frontier batch).
#[derive(Debug)]
pub struct PackedSeqSource {
    name: String,
    channel: PackedLisChannel,
    control: StallControl,
    modulus: u64,
    seqs: Vec<u64>,
    active_mask: u64,
    tick: u64,
}

impl PackedSeqSource {
    /// Creates the source on `channel`.
    pub fn new(
        name: impl Into<String>,
        channel: PackedLisChannel,
        control: StallControl,
        modulus: u64,
        active_mask: u64,
    ) -> Self {
        assert!(modulus >= 2, "sequence modulus must be at least 2");
        PackedSeqSource {
            name: name.into(),
            channel,
            control,
            modulus,
            seqs: vec![0; LANES],
            active_mask,
            tick: 0,
        }
    }

    /// Sets which lanes carry live adversary branches.
    pub fn set_active_mask(&mut self, mask: u64) {
        self.active_mask = mask;
    }

    /// Lane `lane`'s next sequence number.
    pub fn seq(&self, lane: usize) -> u64 {
        self.seqs[lane]
    }
}

impl Component for PackedSeqSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.producer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let stall = self.control.mask_at(self.tick);
        let offer = self.active_mask & !stall;
        let mut planes = vec![0u64; self.channel.width as usize];
        for lane in 0..LANES {
            if offer & (1 << lane) != 0 {
                PackedLisChannel::scatter_value(&mut planes, lane, self.seqs[lane]);
            }
        }
        self.channel.write_planes(sigs, &planes);
        self.channel.write_void(sigs, !offer);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let stall = self.control.mask_at(self.tick);
        let transferred = self.active_mask & !stall & !self.channel.read_stop(sigs);
        for lane in 0..LANES {
            if transferred & (1 << lane) != 0 {
                self.seqs[lane] = (self.seqs[lane] + 1) % self.modulus;
            }
        }
        self.tick += 1;
        Activity::Active
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.seqs);
        if self.control.scripted() {
            out.push(self.tick);
        }
    }

    fn load_state(&mut self, data: &[u64]) {
        self.seqs.copy_from_slice(&data[..LANES]);
        if self.control.scripted() {
            self.tick = data[LANES];
        }
    }

    fn save_lane_state(&self, lane: usize, out: &mut Vec<u64>) {
        out.push(self.seqs[lane]);
    }

    fn load_lane_state(&mut self, lane: usize, data: &[u64]) {
        self.seqs[lane] = data[0];
    }
}

/// The packed twin of [`SeqSink`]: 64 independent expectation counters
/// with per-lane order-violation counters and per-lane monotone
/// delivered counters.
#[derive(Debug)]
pub struct PackedSeqSink {
    name: String,
    channel: PackedLisChannel,
    control: StallControl,
    modulus: u64,
    expects: Vec<u64>,
    active_mask: u64,
    tick: u64,
    order_violations: Vec<ViolationCounter>,
    delivered: Arc<Vec<AtomicU64>>,
}

impl PackedSeqSink {
    /// Creates the sink on `channel`; lane *k*'s order faults land on
    /// `order_violations[k]`.
    ///
    /// # Panics
    ///
    /// Panics if `order_violations` does not hold exactly
    /// [`LANES`] counters.
    pub fn new(
        name: impl Into<String>,
        channel: PackedLisChannel,
        control: StallControl,
        modulus: u64,
        active_mask: u64,
        order_violations: &[ViolationCounter],
    ) -> Self {
        assert!(modulus >= 2, "sequence modulus must be at least 2");
        assert_eq!(
            order_violations.len(),
            LANES,
            "packed sink needs one order counter per lane"
        );
        PackedSeqSink {
            name: name.into(),
            channel,
            control,
            modulus,
            expects: vec![0; LANES],
            active_mask,
            tick: 0,
            order_violations: order_violations.to_vec(),
            delivered: Arc::new((0..LANES).map(|_| AtomicU64::new(0)).collect()),
        }
    }

    /// Sets which lanes carry live adversary branches.
    pub fn set_active_mask(&mut self, mask: u64) {
        self.active_mask = mask;
    }

    /// Lane `lane`'s next expected sequence number.
    pub fn expect(&self, lane: usize) -> u64 {
        self.expects[lane]
    }

    /// Shared handle to the per-lane monotone delivered counters.
    pub fn delivered(&self) -> Arc<Vec<AtomicU64>> {
        Arc::clone(&self.delivered)
    }
}

impl Component for PackedSeqSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.consumer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let stall = self.control.mask_at(self.tick);
        self.channel.write_stop(sigs, stall | !self.active_mask);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let stall = self.control.mask_at(self.tick);
        let void = self.channel.read_void(sigs);
        let transferred = self.active_mask & !stall & !void;
        if transferred != 0 {
            let mut planes = vec![0u64; self.channel.width as usize];
            self.channel.read_planes_into(sigs, &mut planes);
            for lane in 0..LANES {
                if transferred & (1 << lane) != 0 {
                    let v = PackedLisChannel::lane_value(&planes, lane);
                    if v != self.expects[lane] {
                        self.order_violations[lane].record();
                        self.expects[lane] = (v + 1) % self.modulus;
                    } else {
                        self.expects[lane] = (self.expects[lane] + 1) % self.modulus;
                    }
                    self.delivered[lane].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        self.tick += 1;
        Activity::Active
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend_from_slice(&self.expects);
        if self.control.scripted() {
            out.push(self.tick);
        }
    }

    fn load_state(&mut self, data: &[u64]) {
        self.expects.copy_from_slice(&data[..LANES]);
        if self.control.scripted() {
            self.tick = data[LANES];
        }
    }

    fn save_lane_state(&self, lane: usize, out: &mut Vec<u64>) {
        out.push(self.expects[lane]);
    }

    fn load_lane_state(&mut self, lane: usize, data: &[u64]) {
        self.expects[lane] = data[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_sim::System;

    const M: u64 = 64;

    fn all_lanes() -> Vec<ViolationCounter> {
        (0..LANES).map(|_| ViolationCounter::new()).collect()
    }

    #[test]
    fn scalar_adversaries_stream_in_order_when_unstalled() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 32);
        let order = ViolationCounter::new();
        let src_stall = Arc::new(AtomicU64::new(0));
        let snk_stall = Arc::new(AtomicU64::new(0));
        sys.add_component(SeqSource::new(
            "src",
            ch,
            StallControl::External(Arc::clone(&src_stall)),
            M,
        ));
        let sink = SeqSink::new(
            "snk",
            ch,
            StallControl::External(Arc::clone(&snk_stall)),
            M,
            &order,
        );
        let delivered = sink.delivered();
        sys.add_component(sink);
        sys.run(10).unwrap();
        assert_eq!(delivered.load(Ordering::Relaxed), 10);
        assert_eq!(order.count(), 0);
    }

    #[test]
    fn scalar_adversaries_respect_external_stalls() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 32);
        let order = ViolationCounter::new();
        let src_stall = Arc::new(AtomicU64::new(1));
        sys.add_component(SeqSource::new(
            "src",
            ch,
            StallControl::External(Arc::clone(&src_stall)),
            M,
        ));
        let sink = SeqSink::new("snk", ch, StallControl::Scripted(vec![]), M, &order);
        let delivered = sink.delivered();
        sys.add_component(sink);
        sys.run(5).unwrap();
        assert_eq!(
            delivered.load(Ordering::Relaxed),
            0,
            "stalled source is void"
        );
        src_stall.store(0, Ordering::Relaxed);
        sys.run(5).unwrap();
        assert_eq!(delivered.load(Ordering::Relaxed), 5);
        assert_eq!(order.count(), 0);
    }

    #[test]
    fn scalar_sink_counts_order_faults_once_per_fault() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 32);
        let order = ViolationCounter::new();
        // A misbehaving producer that skips sequence number 2.
        sys.add_component(lis_sim::FnComponent::new(
            "bad_src",
            ch.producer_ports(),
            {
                let mut n = 0u64;
                move |sigs: &mut SignalView<'_>| {
                    let v = if n >= 2 { n + 1 } else { n };
                    ch.write_token(sigs, Token::Data(v));
                    n += 1;
                }
            },
            |_| {},
        ));
        let sink = SeqSink::new("snk", ch, StallControl::Scripted(vec![]), M, &order);
        sys.add_component(sink);
        sys.run(8).unwrap();
        assert_eq!(
            order.count(),
            1,
            "one skip = one fault, resynchronized after"
        );
    }

    #[test]
    fn packed_adversaries_stream_per_lane() {
        let mut sys = System::new();
        let ch = PackedLisChannel::new(&mut sys, "c", 32);
        let counters = all_lanes();
        let active = 0b111u64;
        sys.add_component(PackedSeqSource::new(
            "src",
            ch.clone(),
            StallControl::Scripted(vec![]),
            M,
            active,
        ));
        // Stall lane 1 for the first 4 cycles.
        let sink = PackedSeqSink::new(
            "snk",
            ch.clone(),
            StallControl::Scripted(vec![0b010; 4]),
            M,
            active,
            &counters,
        );
        let delivered = sink.delivered();
        sys.add_component(sink);
        sys.run(10).unwrap();
        assert_eq!(delivered[0].load(Ordering::Relaxed), 10);
        assert_eq!(delivered[1].load(Ordering::Relaxed), 6);
        assert_eq!(delivered[2].load(Ordering::Relaxed), 10);
        assert_eq!(
            delivered[3].load(Ordering::Relaxed),
            0,
            "inactive lane is idle"
        );
        assert!(counters.iter().all(|c| c.count() == 0));
    }

    #[test]
    fn packed_lane_state_round_trips_and_resets_the_sequence() {
        let mut sys = System::new();
        let ch = PackedLisChannel::new(&mut sys, "c", 32);
        let counters = all_lanes();
        sys.add_component(PackedSeqSource::new(
            "src",
            ch.clone(),
            StallControl::Scripted(vec![]),
            M,
            u64::MAX,
        ));
        let sink = PackedSeqSink::new(
            "snk",
            ch.clone(),
            StallControl::Scripted(vec![]),
            M,
            u64::MAX,
            &counters,
        );
        sys.add_component(sink);
        sys.run(3).unwrap();
        let lane0 = sys.save_lane(0);
        sys.run(4).unwrap();
        let later = sys.save_lane(0);
        assert_ne!(lane0, later, "sequence counters advanced");
        // Rewind lane 5 to lane 0's earlier snapshot: lane 5 replays the
        // stream from the snapshot without order faults.
        sys.load_lane(5, &lane0);
        sys.run(6).unwrap();
        assert!(counters.iter().all(|c| c.count() == 0));
    }

    #[test]
    fn packed_source_keeps_void_lanes_data_free() {
        let mut sys = System::new();
        let ch = PackedLisChannel::new(&mut sys, "c", 32);
        sys.add_component(PackedSeqSource::new(
            "src",
            ch.clone(),
            // Stall lanes 0..32 on the first cycle.
            StallControl::Scripted(vec![0xFFFF_FFFF]),
            M,
            u64::MAX,
        ));
        sys.run(2).unwrap();
        // After two transfers-or-stalls, check the settled planes obey
        // void => data == 0 (the signalling-legality invariant).
        sys.settle().unwrap();
        let void = sys.peek(ch.void);
        let mut planes = vec![0u64; ch.width as usize];
        for (b, plane) in planes.iter_mut().enumerate() {
            *plane = sys.peek(ch.data[b]);
        }
        for plane in &planes {
            assert_eq!(void & plane, 0, "void lanes must carry zero data");
        }
    }
}

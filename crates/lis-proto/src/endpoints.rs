//! Test-bench endpoints: token sources and sinks with configurable
//! irregularity.
//!
//! LIS correctness must hold for *any* pattern of stalls; the endpoints
//! here inject them deterministically (per seed) so experiments and
//! property tests can sweep the space of data-stream irregularities the
//! paper's §2 discusses.

use crate::channel::LisChannel;
use crate::token::Token;
use lis_sim::{Activity, Component, Ports, SignalView};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// A producer driving a predefined token sequence onto a channel,
/// honouring back-pressure, optionally skipping cycles (emitting void)
/// with probability `stall_probability`.
#[derive(Debug)]
pub struct TokenSource {
    name: String,
    channel: LisChannel,
    pending: VecDeque<u64>,
    stall_probability: f64,
    rng: StdRng,
    /// Whether this cycle is a self-inflicted stall (decided per cycle).
    stalling: bool,
    sent: Arc<Mutex<Vec<u64>>>,
}

impl TokenSource {
    /// Creates a source that will emit `tokens` in order.
    pub fn new(
        name: impl Into<String>,
        channel: LisChannel,
        tokens: impl IntoIterator<Item = u64>,
    ) -> Self {
        TokenSource {
            name: name.into(),
            channel,
            pending: tokens.into_iter().collect(),
            stall_probability: 0.0,
            rng: StdRng::seed_from_u64(0),
            stalling: false,
            sent: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Makes the source skip cycles with the given probability
    /// (deterministic per `seed`).
    #[must_use]
    pub fn with_stalls(mut self, probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.stall_probability = probability;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Handle to the list of tokens actually sent (in order).
    pub fn sent(&self) -> Arc<Mutex<Vec<u64>>> {
        Arc::clone(&self.sent)
    }

    /// Tokens not yet emitted.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }
}

impl Component for TokenSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.producer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let tok = if self.stalling {
            Token::Void
        } else {
            self.pending
                .front()
                .map_or(Token::Void, |&v| Token::Data(v))
        };
        self.channel.write_token(sigs, tok);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let mut changed = false;
        if !self.stalling && !self.channel.read_stop(sigs) {
            if let Some(v) = self.pending.pop_front() {
                self.sent.lock().unwrap().push(v);
                changed = true;
            }
        }
        // Decide next cycle's stall. A stalling source must keep ticking
        // every cycle: the RNG stream is state, and it must advance
        // exactly as in the legacy modes for runs to stay bit-identical.
        if self.stall_probability > 0.0 {
            self.stalling = self.rng.random_bool(self.stall_probability);
            return Activity::Active;
        }
        // Deterministic source: quiescent once drained or held by stop.
        Activity::from_changed(changed)
    }
}

/// A consumer recording the informative stream from a channel,
/// optionally asserting `stop` with probability `stall_probability`.
#[derive(Debug)]
pub struct TokenSink {
    name: String,
    channel: LisChannel,
    stall_probability: f64,
    rng: StdRng,
    stalling: bool,
    received: Arc<Mutex<Vec<u64>>>,
    cycles_busy: u64,
    cycles_total: u64,
}

impl TokenSink {
    /// Creates a sink on `channel`.
    pub fn new(name: impl Into<String>, channel: LisChannel) -> Self {
        TokenSink {
            name: name.into(),
            channel,
            stall_probability: 0.0,
            rng: StdRng::seed_from_u64(0),
            stalling: false,
            received: Arc::new(Mutex::new(Vec::new())),
            cycles_busy: 0,
            cycles_total: 0,
        }
    }

    /// Makes the sink refuse tokens with the given probability
    /// (deterministic per `seed`).
    #[must_use]
    pub fn with_stalls(mut self, probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.stall_probability = probability;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Handle to the informative tokens received (in order).
    pub fn received(&self) -> Arc<Mutex<Vec<u64>>> {
        Arc::clone(&self.received)
    }
}

impl Component for TokenSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.consumer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        self.channel.write_stop(sigs, self.stalling);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        // The busy/total counters are diagnostics of *executed* ticks;
        // cycles skipped as quiescent (only ever void cycles) are not
        // counted.
        self.cycles_total += 1;
        let mut changed = false;
        if !self.stalling {
            if let Token::Data(v) = self.channel.read_token(sigs) {
                self.received.lock().unwrap().push(v);
                self.cycles_busy += 1;
                changed = true;
            }
        }
        // As for the source: a stalling sink's RNG is state and must
        // advance every cycle.
        if self.stall_probability > 0.0 {
            self.stalling = self.rng.random_bool(self.stall_probability);
            return Activity::Active;
        }
        Activity::from_changed(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::{RelayStation, ViolationCounter};
    use lis_sim::System;

    #[test]
    fn source_to_sink_direct() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 16);
        let src = TokenSource::new("src", ch, 1..=5);
        let sink = TokenSink::new("sink", ch);
        let got = sink.received();
        sys.add_component(src);
        sys.add_component(sink);
        sys.run(10).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn stream_survives_stalls_on_both_ends_and_relays() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let a = LisChannel::new(&mut sys, "a", 16);
        let src = TokenSource::new("src", a, 1..=50).with_stalls(0.3, 11);
        sys.add_component(src);
        let out = RelayStation::chain(&mut sys, "link", a, 4, &violations);
        let sink = TokenSink::new("sink", out).with_stalls(0.4, 23);
        let got = sink.received();
        sys.add_component(sink);
        sys.run(400).unwrap();
        assert_eq!(*got.lock().unwrap(), (1..=50).collect::<Vec<u64>>());
        assert_eq!(violations.count(), 0);
    }

    #[test]
    fn source_reports_progress() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let src = TokenSource::new("src", ch, vec![9, 8]);
        let sent = src.sent();
        assert_eq!(src.remaining(), 2);
        sys.add_component(src);
        sys.add_component(TokenSink::new("sink", ch));
        sys.run(5).unwrap();
        assert_eq!(*sent.lock().unwrap(), vec![9, 8]);
    }
}

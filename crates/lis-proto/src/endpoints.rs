//! Test-bench endpoints: token sources and sinks with configurable
//! irregularity.
//!
//! LIS correctness must hold for *any* pattern of stalls; the endpoints
//! here inject them deterministically — per seed ([`StallPattern::Random`])
//! or per schedule ([`StallPattern::Periodic`]) — so experiments and
//! property tests can sweep the space of data-stream irregularities the
//! paper's §2 discusses. Scheduled patterns derive their phase from the
//! view's cycle counter and declare their next event time to the
//! kernel ([`Activity::Sleep`]), which lets the fast-forward mode jump
//! over whole stall spans.

use crate::channel::LisChannel;
use crate::token::Token;
use lis_sim::{Activity, Component, Ports, SignalView};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// When an endpoint refuses to make progress on its own account.
///
/// A `f64` converts into a pattern (`0.0` → [`StallPattern::None`],
/// otherwise [`StallPattern::Random`]), so probability-taking APIs keep
/// accepting plain numbers.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum StallPattern {
    /// Never stall.
    #[default]
    None,
    /// Stall each cycle with this probability, drawn from a seeded RNG.
    /// The RNG stream is endpoint state advancing every cycle, so a
    /// random endpoint never quiesces on its own.
    Random(f64),
    /// A deterministic duty cycle derived from the simulation clock:
    /// within each `period`, accept/emit during the first `on` cycles
    /// (offset by `phase`) and stall for the rest. Being a pure
    /// function of the cycle counter, the endpoint can sleep through
    /// the stall span and declare its wake-up to the event wheel.
    Periodic {
        /// Accepting/emitting cycles at the start of each period.
        on: u64,
        /// Total cycles per period (must be ≥ 1 and ≥ `on`).
        period: u64,
        /// Shifts the schedule: cycle `c` maps to slot
        /// `(c + phase) % period`.
        phase: u64,
    },
}

impl StallPattern {
    /// Whether the schedule stalls at `cycle` ([`StallPattern::Random`]
    /// is *not* cycle-determined; this reports `false` for it — random
    /// endpoints track their stall as state instead).
    pub(crate) fn scheduled_stall_at(self, cycle: u64) -> bool {
        match self {
            StallPattern::Periodic { on, period, phase } => (cycle + phase) % period >= on,
            _ => false,
        }
    }

    /// The endpoint's next self-driven event strictly after `cycle`, as
    /// an [`Activity`] declaration. Deep inside a periodic stall span
    /// this is a [`Activity::Sleep`] to the start of the next accept
    /// window; at span boundaries (and for non-scheduled patterns) it
    /// is [`Activity::Active`] so the boundary cycle is evaluated.
    fn next_event(self, cycle: u64) -> Activity {
        match self {
            StallPattern::Periodic { on, period, phase } => {
                if on == 0 {
                    // Permanently stalled: nothing self-driven, ever.
                    return Activity::Quiescent;
                }
                let offset = (cycle + phase) % period;
                if offset < on || offset + 1 == period {
                    // Accept window, or last stall cycle: the next cycle
                    // may flip the wires — run it.
                    Activity::Active
                } else {
                    // Deep in the stall span: sleep to the next window.
                    Activity::Sleep(period - offset)
                }
            }
            _ => Activity::Active,
        }
    }

    pub(crate) fn validate(self) {
        match self {
            StallPattern::None => {}
            StallPattern::Random(p) => {
                assert!(!p.is_nan(), "stall probability is NaN");
                assert!(
                    (0.0..=1.0).contains(&p),
                    "stall probability {p} not in 0..=1"
                );
            }
            StallPattern::Periodic { on, period, phase } => {
                assert!(period >= 1, "periodic stall pattern needs period >= 1");
                assert!(
                    on <= period,
                    "periodic stall pattern has on={on} > period={period}"
                );
                // A phase is a slot within the period. Accepting
                // `phase >= period` would silently alias `phase % period`
                // (and overflow `cycle + phase` near u64::MAX), hiding
                // typos such as swapped on/phase arguments — reject it
                // loudly instead of normalizing.
                assert!(
                    phase < period,
                    "periodic stall pattern has phase={phase} >= period={period} \
                     (phases are slots within the period; did you mean phase % period?)"
                );
            }
        }
    }
}

impl From<f64> for StallPattern {
    /// Clamps rather than trusting the caller: `NaN` and `p <= 0` mean
    /// "never stall" ([`StallPattern::None`]), `p >= 1` saturates to
    /// `Random(1.0)` (always stall). A degenerate probability therefore
    /// can never smuggle an invalid schedule past validation (which
    /// still *rejects* out-of-range values built directly).
    fn from(probability: f64) -> Self {
        if probability.is_nan() || probability <= 0.0 {
            StallPattern::None
        } else if probability >= 1.0 {
            StallPattern::Random(1.0)
        } else {
            StallPattern::Random(probability)
        }
    }
}

/// A producer driving a predefined token sequence onto a channel,
/// honouring back-pressure, optionally skipping cycles (emitting void)
/// per its [`StallPattern`].
#[derive(Debug)]
pub struct TokenSource {
    name: String,
    channel: LisChannel,
    pending: VecDeque<u64>,
    pattern: StallPattern,
    rng: StdRng,
    /// Whether this cycle is a self-inflicted random stall (decided per
    /// cycle; scheduled stalls are computed from the clock instead).
    stalling: bool,
    sent: Arc<Mutex<Vec<u64>>>,
}

impl TokenSource {
    /// Creates a source that will emit `tokens` in order.
    pub fn new(
        name: impl Into<String>,
        channel: LisChannel,
        tokens: impl IntoIterator<Item = u64>,
    ) -> Self {
        TokenSource {
            name: name.into(),
            channel,
            pending: tokens.into_iter().collect(),
            pattern: StallPattern::None,
            rng: StdRng::seed_from_u64(0),
            stalling: false,
            sent: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Makes the source skip cycles with the given probability
    /// (deterministic per `seed`).
    #[must_use]
    pub fn with_stalls(self, probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.with_stall_pattern(probability, seed)
    }

    /// Makes the source stall per `pattern` (the seed feeds
    /// [`StallPattern::Random`]; scheduled patterns ignore it).
    #[must_use]
    pub fn with_stall_pattern(mut self, pattern: impl Into<StallPattern>, seed: u64) -> Self {
        let pattern = pattern.into();
        pattern.validate();
        self.pattern = pattern;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Handle to the list of tokens actually sent (in order).
    pub fn sent(&self) -> Arc<Mutex<Vec<u64>>> {
        Arc::clone(&self.sent)
    }

    /// Tokens not yet emitted.
    pub fn remaining(&self) -> usize {
        self.pending.len()
    }

    fn stalled_at(&self, cycle: u64) -> bool {
        match self.pattern {
            StallPattern::Random(_) => self.stalling,
            pattern => pattern.scheduled_stall_at(cycle),
        }
    }
}

impl Component for TokenSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.producer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let tok = if self.stalled_at(sigs.cycle()) {
            Token::Void
        } else {
            self.pending
                .front()
                .map_or(Token::Void, |&v| Token::Data(v))
        };
        self.channel.write_token(sigs, tok);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let mut changed = false;
        if !self.stalled_at(sigs.cycle()) && !self.channel.read_stop(sigs) {
            if let Some(v) = self.pending.pop_front() {
                self.sent.lock().unwrap().push(v);
                changed = true;
            }
        }
        match self.pattern {
            // Decide next cycle's stall. A randomly stalling source must
            // keep ticking every cycle: the RNG stream is state, and it
            // must advance exactly as in the legacy modes for runs to
            // stay bit-identical.
            StallPattern::Random(p) => {
                self.stalling = self.rng.random_bool(p);
                Activity::Active
            }
            // Deterministic source: quiescent once drained or held by
            // stop (a stop change re-wakes the tick).
            StallPattern::None => Activity::from_changed(changed),
            StallPattern::Periodic { .. } => {
                if self.pending.is_empty() {
                    // Drained: the output is void forever.
                    Activity::from_changed(changed)
                } else {
                    self.pattern.next_event(sigs.cycle())
                }
            }
        }
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.rng.state());
        out.push(self.stalling as u64);
        out.push(self.pending.len() as u64);
        out.extend(self.pending.iter().copied());
        let sent = self.sent.lock().unwrap();
        out.push(sent.len() as u64);
        out.extend(sent.iter().copied());
    }

    fn load_state(&mut self, data: &[u64]) {
        self.rng = StdRng::from_state([data[0], data[1], data[2], data[3]]);
        self.stalling = data[4] != 0;
        let n = data[5] as usize;
        self.pending = data[6..6 + n].iter().copied().collect();
        let m = data[6 + n] as usize;
        *self.sent.lock().unwrap() = data[7 + n..7 + n + m].to_vec();
    }
}

/// A consumer recording the informative stream from a channel,
/// optionally asserting `stop` per its [`StallPattern`].
#[derive(Debug)]
pub struct TokenSink {
    name: String,
    channel: LisChannel,
    pattern: StallPattern,
    rng: StdRng,
    stalling: bool,
    received: Arc<Mutex<Vec<u64>>>,
    cycles_busy: u64,
    cycles_total: u64,
}

impl TokenSink {
    /// Creates a sink on `channel`.
    pub fn new(name: impl Into<String>, channel: LisChannel) -> Self {
        TokenSink {
            name: name.into(),
            channel,
            pattern: StallPattern::None,
            rng: StdRng::seed_from_u64(0),
            stalling: false,
            received: Arc::new(Mutex::new(Vec::new())),
            cycles_busy: 0,
            cycles_total: 0,
        }
    }

    /// Makes the sink refuse tokens with the given probability
    /// (deterministic per `seed`).
    #[must_use]
    pub fn with_stalls(self, probability: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&probability));
        self.with_stall_pattern(probability, seed)
    }

    /// Makes the sink stall per `pattern` (the seed feeds
    /// [`StallPattern::Random`]; scheduled patterns ignore it).
    #[must_use]
    pub fn with_stall_pattern(mut self, pattern: impl Into<StallPattern>, seed: u64) -> Self {
        let pattern = pattern.into();
        pattern.validate();
        self.pattern = pattern;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Handle to the informative tokens received (in order).
    pub fn received(&self) -> Arc<Mutex<Vec<u64>>> {
        Arc::clone(&self.received)
    }

    fn stalled_at(&self, cycle: u64) -> bool {
        match self.pattern {
            StallPattern::Random(_) => self.stalling,
            pattern => pattern.scheduled_stall_at(cycle),
        }
    }
}

impl Component for TokenSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.consumer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let stop = self.stalled_at(sigs.cycle());
        self.channel.write_stop(sigs, stop);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        // The busy/total counters are diagnostics of *executed* ticks;
        // cycles skipped as quiescent (only ever void cycles) are not
        // counted.
        self.cycles_total += 1;
        let mut changed = false;
        if !self.stalled_at(sigs.cycle()) {
            if let Token::Data(v) = self.channel.read_token(sigs) {
                self.received.lock().unwrap().push(v);
                self.cycles_busy += 1;
                changed = true;
            }
        }
        match self.pattern {
            // As for the source: a randomly stalling sink's RNG is state
            // and must advance every cycle.
            StallPattern::Random(p) => {
                self.stalling = self.rng.random_bool(p);
                Activity::Active
            }
            StallPattern::None => Activity::from_changed(changed),
            // A scheduled sink sleeps through its stall span; a
            // data/void change still re-wakes the tick early (it then
            // consumes nothing and re-declares the same wake-up).
            StallPattern::Periodic { .. } => self.pattern.next_event(sigs.cycle()),
        }
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.extend(self.rng.state());
        out.push(self.stalling as u64);
        out.push(self.cycles_busy);
        out.push(self.cycles_total);
        let received = self.received.lock().unwrap();
        out.push(received.len() as u64);
        out.extend(received.iter().copied());
    }

    fn load_state(&mut self, data: &[u64]) {
        self.rng = StdRng::from_state([data[0], data[1], data[2], data[3]]);
        self.stalling = data[4] != 0;
        self.cycles_busy = data[5];
        self.cycles_total = data[6];
        let n = data[7] as usize;
        *self.received.lock().unwrap() = data[8..8 + n].to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relay::{RelayStation, ViolationCounter};
    use lis_sim::{SettleMode, System};

    #[test]
    fn from_f64_clamps_degenerate_probabilities() {
        assert_eq!(StallPattern::from(f64::NAN), StallPattern::None);
        assert_eq!(StallPattern::from(-0.25), StallPattern::None);
        assert_eq!(StallPattern::from(-0.0), StallPattern::None);
        assert_eq!(StallPattern::from(0.0), StallPattern::None);
        assert_eq!(StallPattern::from(f64::NEG_INFINITY), StallPattern::None);
        assert_eq!(StallPattern::from(1.0), StallPattern::Random(1.0));
        assert_eq!(StallPattern::from(1.5), StallPattern::Random(1.0));
        assert_eq!(StallPattern::from(f64::INFINITY), StallPattern::Random(1.0));
        assert_eq!(StallPattern::from(0.5), StallPattern::Random(0.5));
        // The boundary values survive a full endpoint construction.
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let _ = TokenSource::new("s", ch, 1..=3).with_stall_pattern(1.0, 0);
        let _ = TokenSink::new("k", ch).with_stall_pattern(0.0, 0);
    }

    #[test]
    #[should_panic(expected = "stall probability is NaN")]
    fn explicit_nan_random_is_rejected() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let _ = TokenSink::new("k", ch).with_stall_pattern(StallPattern::Random(f64::NAN), 0);
    }

    #[test]
    #[should_panic(expected = "not in 0..=1")]
    fn explicit_out_of_range_random_is_rejected() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let _ = TokenSource::new("s", ch, 1..=3).with_stall_pattern(StallPattern::Random(1.5), 0);
    }

    #[test]
    #[should_panic(expected = "phase=8 >= period=8")]
    fn periodic_phase_equal_to_period_is_rejected() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let _ = TokenSource::new("s", ch, 1..=3).with_stall_pattern(
            StallPattern::Periodic {
                on: 3,
                period: 8,
                phase: 8,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "phase=9 >= period=8")]
    fn periodic_phase_beyond_period_is_rejected() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let _ = TokenSink::new("k", ch).with_stall_pattern(
            StallPattern::Periodic {
                on: 3,
                period: 8,
                phase: 9,
            },
            0,
        );
    }

    #[test]
    fn periodic_phase_edges_inside_the_period_are_accepted() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        // phase = 0 and phase = period - 1 are the legal extremes.
        for phase in [0, 7] {
            let _ = TokenSource::new("s", ch, 1..=3).with_stall_pattern(
                StallPattern::Periodic {
                    on: 3,
                    period: 8,
                    phase,
                },
                0,
            );
        }
        // The degenerate period=1 pattern only admits phase 0.
        let _ = TokenSink::new("k", ch).with_stall_pattern(
            StallPattern::Periodic {
                on: 1,
                period: 1,
                phase: 0,
            },
            0,
        );
    }

    #[test]
    #[should_panic]
    fn with_stalls_rejects_nan() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let _ = TokenSource::new("s", ch, 1..=3).with_stalls(f64::NAN, 0);
    }

    #[test]
    fn source_to_sink_direct() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 16);
        let src = TokenSource::new("src", ch, 1..=5);
        let sink = TokenSink::new("sink", ch);
        let got = sink.received();
        sys.add_component(src);
        sys.add_component(sink);
        sys.run(10).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn stream_survives_stalls_on_both_ends_and_relays() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let a = LisChannel::new(&mut sys, "a", 16);
        let src = TokenSource::new("src", a, 1..=50).with_stalls(0.3, 11);
        sys.add_component(src);
        let out = RelayStation::chain(&mut sys, "link", a, 4, &violations);
        let sink = TokenSink::new("sink", out).with_stalls(0.4, 23);
        let got = sink.received();
        sys.add_component(sink);
        sys.run(400).unwrap();
        assert_eq!(*got.lock().unwrap(), (1..=50).collect::<Vec<u64>>());
        assert_eq!(violations.count(), 0);
    }

    #[test]
    fn source_reports_progress() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        let src = TokenSource::new("src", ch, vec![9, 8]);
        let sent = src.sent();
        assert_eq!(src.remaining(), 2);
        sys.add_component(src);
        sys.add_component(TokenSink::new("sink", ch));
        sys.run(5).unwrap();
        assert_eq!(*sent.lock().unwrap(), vec![9, 8]);
    }

    /// Periodic endpoints are pure functions of the clock: every settle
    /// mode — including fast-forward, which skips their sleep spans —
    /// must deliver the identical stream.
    #[test]
    fn periodic_stalls_are_identical_across_modes() {
        let run = |mode: SettleMode| {
            let mut sys = System::new();
            sys.set_settle_mode(mode);
            let violations = ViolationCounter::new();
            let a = LisChannel::new(&mut sys, "a", 16);
            let src = TokenSource::new("src", a, 1..=40).with_stall_pattern(
                StallPattern::Periodic {
                    on: 3,
                    period: 8,
                    phase: 2,
                },
                0,
            );
            sys.add_component(src);
            let out = RelayStation::chain(&mut sys, "link", a, 3, &violations);
            let sink = TokenSink::new("sink", out).with_stall_pattern(
                StallPattern::Periodic {
                    on: 2,
                    period: 16,
                    phase: 0,
                },
                0,
            );
            let got = sink.received();
            sys.add_component(sink);
            sys.run(700).unwrap();
            sys.settle().unwrap();
            assert_eq!(violations.count(), 0);
            let stream = got.lock().unwrap().clone();
            (stream, sys.signal_values(), sys.cycle())
        };
        let reference = run(SettleMode::FullSweep);
        assert_eq!(reference.0, (1..=40).collect::<Vec<u64>>());
        assert_eq!(run(SettleMode::Worklist), reference);
        assert_eq!(run(SettleMode::ActivityDriven), reference);
        assert_eq!(run(SettleMode::FastForward), reference);
    }

    /// A fully periodic pipeline actually exercises the event wheel:
    /// the kernel must report jumped cycles, not just match bit-exactly.
    #[test]
    fn periodic_pipeline_fast_forwards() {
        let mut sys = System::new();
        sys.set_settle_mode(SettleMode::FastForward);
        let violations = ViolationCounter::new();
        let a = LisChannel::new(&mut sys, "a", 16);
        let src = TokenSource::new("src", a, 1..=10);
        sys.add_component(src);
        let out = RelayStation::chain(&mut sys, "link", a, 2, &violations);
        let sink = TokenSink::new("sink", out).with_stall_pattern(
            StallPattern::Periodic {
                on: 2,
                period: 64,
                phase: 0,
            },
            0,
        );
        let got = sink.received();
        sys.add_component(sink);
        sys.run(400).unwrap();
        assert_eq!(*got.lock().unwrap(), (1..=10).collect::<Vec<u64>>());
        assert_eq!(violations.count(), 0);
        let stats = sys.scheduler_stats();
        assert!(
            stats.cycles_fast_forwarded > 200,
            "a 2/64 duty-cycle sink should leave most cycles dead, got {}",
            stats.cycles_fast_forwarded
        );
    }
}

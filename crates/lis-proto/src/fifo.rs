//! FIFO port adapters: the input/output ports of the paper's Figure 2.
//!
//! The synchronization processor does not look at raw channel wires; each
//! wrapper port contains a small queue presenting FIFO-like signals to
//! the shell — `not_empty`/`pop` on inputs, `not_full`/`push` on outputs
//! ("The SP communicates with the LIS ports with FIFO-like signals…
//! formally equivalent to the voidin/out and stopin/out of [1]", §3).

use crate::channel::LisChannel;
use crate::relay::ViolationCounter;
use crate::token::Token;
use lis_sim::{Activity, Component, Ports, SignalId, SignalView, System};
use std::collections::VecDeque;

/// Signals an input port presents to the shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InputPortFace {
    /// Head-of-queue payload (valid when `not_empty`).
    pub data: SignalId,
    /// High when a token is available.
    pub not_empty: SignalId,
    /// Shell pulls high to consume the head token this cycle.
    pub pop: SignalId,
}

/// Signals an output port presents to the shell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputPortFace {
    /// Payload the shell wants to emit (sampled when `push`).
    pub data: SignalId,
    /// High when the port can accept a token.
    pub not_full: SignalId,
    /// Shell pulls high to enqueue `data` this cycle.
    pub push: SignalId,
}

/// Queue capacity of the port adapters.
///
/// Two slots is the minimum that tolerates the one-cycle-registered
/// `stop` of the LIS protocol without ever dropping a token (same
/// analysis as the relay station's main/aux pair).
pub const PORT_QUEUE_CAPACITY: usize = 2;

/// An input port: receives tokens from a LIS channel, queues them, and
/// presents the FIFO face to the shell.
#[derive(Debug)]
pub struct InputPort {
    name: String,
    channel: LisChannel,
    face: InputPortFace,
    queue: VecDeque<u64>,
    /// Registered back-pressure towards the channel.
    stop_up: bool,
    violations: ViolationCounter,
}

impl InputPort {
    /// Creates an input port fed by `channel`, allocating its face
    /// signals in `system`.
    pub fn new(
        system: &mut System,
        name: impl Into<String>,
        channel: LisChannel,
        violations: ViolationCounter,
    ) -> Self {
        let name = name.into();
        let face = InputPortFace {
            data: system.add_signal(format!("{name}_q"), channel.width),
            not_empty: system.add_signal(format!("{name}_not_empty"), 1),
            pop: system.add_signal(format!("{name}_pop"), 1),
        };
        InputPort {
            name,
            channel,
            face,
            queue: VecDeque::with_capacity(PORT_QUEUE_CAPACITY),
            stop_up: false,
            violations,
        }
    }

    /// The FIFO face the shell connects to.
    pub fn face(&self) -> InputPortFace {
        self.face
    }
}

impl Component for InputPort {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        // Face data/not_empty come from the registered queue; `pop` is
        // sampled at the clock edge.
        self.channel
            .consumer_ports()
            .merge(Ports::writes_only([self.face.data, self.face.not_empty]))
            .tick_read(self.face.pop)
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        sigs.set(self.face.data, self.queue.front().copied().unwrap_or(0));
        sigs.set_bool(self.face.not_empty, !self.queue.is_empty());
        self.channel.write_stop(sigs, self.stop_up);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let mut changed = false;
        // Shell consumes first… (popping an empty queue is a shell
        // bug).
        if sigs.get_bool(self.face.pop) {
            changed = true;
            if self.queue.pop_front().is_none() {
                self.violations.record();
            }
        }
        // …then the channel delivers (transfer valid only when we showed
        // stop = 0 this cycle).
        if !self.stop_up {
            if let Token::Data(v) = self.channel.read_token(sigs) {
                changed = true;
                if self.queue.len() < PORT_QUEUE_CAPACITY {
                    self.queue.push_back(v);
                } else {
                    self.violations.record();
                }
            }
        }
        // The producer reads this registered stop in the cycle of the
        // transfer, so announcing "full" is early enough — no token is in
        // flight once stop is visible, and a pop happening in the same
        // cycle as the last-slot fill keeps the port running at one token
        // per cycle.
        let stop = self.queue.len() >= PORT_QUEUE_CAPACITY;
        changed |= stop != self.stop_up;
        self.stop_up = stop;
        // A full port behind an asserted stop with an idle shell moves
        // nothing — quiescent until `pop`, the token wires, or the
        // queue state change.
        Activity::from_changed(changed)
    }
}

/// An output port: accepts pushes from the shell, queues them, and
/// drives a LIS channel, honouring downstream back-pressure.
#[derive(Debug)]
pub struct OutputPort {
    name: String,
    channel: LisChannel,
    face: OutputPortFace,
    queue: VecDeque<u64>,
    violations: ViolationCounter,
}

impl OutputPort {
    /// Creates an output port driving `channel`, allocating its face
    /// signals in `system`.
    pub fn new(
        system: &mut System,
        name: impl Into<String>,
        channel: LisChannel,
        violations: ViolationCounter,
    ) -> Self {
        let name = name.into();
        let face = OutputPortFace {
            data: system.add_signal(format!("{name}_d"), channel.width),
            not_full: system.add_signal(format!("{name}_not_full"), 1),
            push: system.add_signal(format!("{name}_push"), 1),
        };
        OutputPort {
            name,
            channel,
            face,
            queue: VecDeque::with_capacity(PORT_QUEUE_CAPACITY),
            violations,
        }
    }

    /// The FIFO face the shell connects to.
    pub fn face(&self) -> OutputPortFace {
        self.face
    }
}

impl Component for OutputPort {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel
            .producer_ports()
            .merge(Ports::writes_only([self.face.not_full]))
            .tick_read(self.face.push)
            .tick_read(self.face.data)
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let out = match self.queue.front() {
            Some(&v) => Token::Data(v),
            None => Token::Void,
        };
        self.channel.write_token(sigs, out);
        sigs.set_bool(self.face.not_full, self.queue.len() < PORT_QUEUE_CAPACITY);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let mut changed = false;
        // Channel consumes the head unless downstream stalls…
        if !self.channel.read_stop(sigs) && !self.queue.is_empty() {
            self.queue.pop_front();
            changed = true;
        }
        // …then the shell's push lands.
        if sigs.get_bool(self.face.push) {
            changed = true;
            if self.queue.len() < PORT_QUEUE_CAPACITY {
                self.queue.push_back(sigs.get(self.face.data));
            } else {
                // Pushing a full port is a shell bug.
                self.violations.record();
            }
        }
        // A stalled output port holding its tokens with no push is
        // quiescent until `stop` drops or the shell pushes again.
        Activity::from_changed(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_sim::FnComponent;
    use std::sync::{Arc, Mutex};

    #[test]
    fn input_port_queues_and_pops_in_order() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let ch = LisChannel::new(&mut sys, "in", 8);
        let port = InputPort::new(&mut sys, "p", ch, violations.clone());
        let face = port.face();
        sys.add_component(port);

        // Source: pushes 1, 2, 3 respecting stop.
        let pending = Arc::new(Mutex::new(vec![1u64, 2, 3]));
        let p2 = Arc::clone(&pending);
        sys.add_component(FnComponent::new(
            "src",
            ch.producer_ports(),
            move |sigs: &mut SignalView<'_>| {
                let tok = p2
                    .lock()
                    .unwrap()
                    .first()
                    .map_or(Token::Void, |&v| Token::Data(v));
                ch.write_token(sigs, tok);
            },
            move |sigs: &SignalView<'_>| {
                if !ch.read_stop(sigs) && !pending.lock().unwrap().is_empty() {
                    pending.lock().unwrap().remove(0);
                }
            },
        ));

        // Shell: pops whenever not_empty.
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = Arc::clone(&got);
        sys.add_component(FnComponent::new(
            "shell",
            Ports::new([face.not_empty], [face.pop]).tick_read(face.data),
            move |sigs: &mut SignalView<'_>| {
                let ne = sigs.get_bool(face.not_empty);
                sigs.set_bool(face.pop, ne);
            },
            move |sigs: &SignalView<'_>| {
                if sigs.get_bool(face.pop) {
                    g2.lock().unwrap().push(sigs.get(face.data));
                }
            },
        ));

        sys.run(12).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![1, 2, 3]);
        assert_eq!(violations.count(), 0);
    }

    #[test]
    fn input_port_backpressures_when_not_drained() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let ch = LisChannel::new(&mut sys, "in", 8);
        let port = InputPort::new(&mut sys, "p", ch, violations.clone());
        let face = port.face();
        sys.add_component(port);

        let sent = Arc::new(Mutex::new(0u64));
        let s2 = Arc::clone(&sent);
        sys.add_component(FnComponent::new(
            "src",
            ch.producer_ports(),
            move |sigs: &mut SignalView<'_>| {
                let n = *s2.lock().unwrap();
                ch.write_token(sigs, Token::Data(n));
            },
            move |sigs: &SignalView<'_>| {
                if !ch.read_stop(sigs) {
                    *sent.lock().unwrap() += 1;
                }
            },
        ));
        // Shell never pops.
        sys.add_component(FnComponent::new(
            "lazy_shell",
            Ports::writes_only([face.pop]),
            move |sigs: &mut SignalView<'_>| {
                sigs.set_bool(face.pop, false);
            },
            |_| {},
        ));
        sys.run(20).unwrap();
        assert_eq!(
            violations.count(),
            0,
            "port must stop the source before overflowing"
        );
        assert!(sys.peek_bool(face.not_empty));
    }

    #[test]
    fn output_port_emits_and_respects_stop() {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let ch = LisChannel::new(&mut sys, "out", 8);
        let port = OutputPort::new(&mut sys, "p", ch, violations.clone());
        let face = port.face();
        sys.add_component(port);

        // Shell: push 5 values whenever not_full.
        let next = Arc::new(Mutex::new(1u64));
        let n2 = Arc::clone(&next);
        sys.add_component(FnComponent::new(
            "shell",
            Ports::new([face.not_full], [face.push, face.data]),
            move |sigs: &mut SignalView<'_>| {
                let v = *n2.lock().unwrap();
                let can = sigs.get_bool(face.not_full) && v <= 5;
                sigs.set_bool(face.push, can);
                sigs.set(face.data, v);
            },
            move |sigs: &SignalView<'_>| {
                if sigs.get_bool(face.push) {
                    *next.lock().unwrap() += 1;
                }
            },
        ));

        // Sink with a stall pattern.
        let got = Arc::new(Mutex::new(Vec::new()));
        let g2 = Arc::clone(&got);
        let t = Arc::new(Mutex::new(0usize));
        let t2 = Arc::clone(&t);
        sys.add_component(FnComponent::new(
            "sink",
            ch.consumer_ports(),
            move |sigs: &mut SignalView<'_>| {
                let stall = (*t2.lock().unwrap()).is_multiple_of(3);
                ch.write_stop(sigs, stall);
            },
            move |sigs: &SignalView<'_>| {
                let stall = (*t.lock().unwrap()).is_multiple_of(3);
                if !stall {
                    if let Token::Data(v) = ch.read_token(sigs) {
                        g2.lock().unwrap().push(v);
                    }
                }
                *t.lock().unwrap() += 1;
            },
        ));

        sys.run(40).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(violations.count(), 0);
    }
}

//! Lane-batched LIS plumbing: bit-plane packed channels and the packed
//! relay/endpoint/wire components that speak them.
//!
//! A scenario fleet advances up to [`LANES`] independent traffic
//! scenarios ("lanes") of the same SoC in lockstep. Replicating the
//! behavioural plumbing per lane makes the arena 64× larger and the
//! simulation correspondingly slower; instead, this module packs each
//! LIS channel across lanes as **bit-planes**: the `void` and `stop`
//! wires become one 64-bit signal each (bit `k` = lane `k`), and a
//! width-`W` data channel becomes `W` plane signals (bit `k` of plane
//! `b` = bit `b` of lane `k`'s payload). One relay station, wire,
//! source or sink then serves all lanes with a handful of bitwise mask
//! operations per cycle — the same bit-slicing trick
//! [`lis_sim::PackedNetlistSim`] plays for gate-level shells, whose
//! lane-words these planes match natively (no per-lane scatter/gather
//! at the shell boundary).
//!
//! Every component here is the exact lane-wise twin of its scalar
//! counterpart ([`RelayStation`](crate::RelayStation), [`TokenSource`](crate::TokenSource), [`TokenSink`](crate::TokenSink),
//! the zero-latency wire): lane `k`'s state evolves bit-identically to
//! a solo run with the same seeds, which is the fleet correctness bar.
//! [`LaneDemux`] / [`LaneMux`] bridge packed channels to per-lane
//! scalar channels for components that are still replicated per lane
//! (behavioural wrappers) — zero-latency combinational hops that leave
//! the settled values every registered face samples unchanged.

use crate::channel::LisChannel;
use crate::endpoints::StallPattern;
use crate::relay::ViolationCounter;
use crate::token::Token;
use lis_sim::{Activity, Component, Ports, SignalId, SignalView, System, LANES};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The bit-plane packed twin of [`LisChannel`]: one channel carrying up
/// to [`LANES`] independent scenario lanes.
///
/// `void` and `stop` hold one lane per bit; `data[b]` holds bit `b` of
/// every lane's payload. Lane `k` of a packed channel behaves exactly
/// like a scalar channel: `void` powers up high on every lane (idle
/// channels carry void, not stale data).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedLisChannel {
    /// Data bit-planes (downstream): `data[b]` bit `k` is bit `b` of
    /// lane `k`'s payload.
    pub data: Vec<SignalId>,
    /// Void flags (downstream), one lane per bit.
    pub void: SignalId,
    /// Back-pressure (upstream), one lane per bit.
    pub stop: SignalId,
    /// Payload width in bits (the number of data planes).
    pub width: u32,
}

impl PackedLisChannel {
    /// Allocates the `width + 2` plane signals of a packed channel in
    /// `system`. Every lane powers up void.
    pub fn new(system: &mut System, name: &str, width: u32) -> Self {
        let data = (0..width)
            .map(|b| system.add_signal(format!("{name}_d{b}"), 64))
            .collect();
        let void = system.add_signal(format!("{name}_void"), 64);
        let stop = system.add_signal(format!("{name}_stop"), 64);
        system.poke(void, u64::MAX);
        PackedLisChannel {
            data,
            void,
            stop,
            width,
        }
    }

    /// Declared ports of a registered producer: eval writes the data
    /// planes and `void`; `stop` is sampled at the clock edge.
    pub fn producer_ports(&self) -> Ports {
        Ports::writes_only(self.data.iter().copied().chain([self.void])).tick_read(self.stop)
    }

    /// Declared ports of a registered consumer: eval writes `stop`; the
    /// token planes are sampled at the clock edge.
    pub fn consumer_ports(&self) -> Ports {
        let mut p = Ports::writes_only([self.stop]);
        for &d in &self.data {
            p = p.tick_read(d);
        }
        p.tick_read(self.void)
    }

    /// Extra declaration for a stage reading the token planes
    /// *combinationally* during eval (zero-latency connectors, packed
    /// gate-level shells).
    pub fn downstream_reads(&self) -> Ports {
        Ports::reads_only(self.data.iter().copied().chain([self.void]))
    }

    /// Extra declaration for a stage reading back-pressure
    /// combinationally during eval.
    pub fn stop_reads(&self) -> Ports {
        Ports::reads_only([self.stop])
    }

    /// Reads the void mask (bit `k` = lane `k` carries no token).
    pub fn read_void(&self, sigs: &SignalView<'_>) -> u64 {
        sigs.get(self.void)
    }

    /// Reads the stop mask (bit `k` = lane `k` is back-pressured).
    pub fn read_stop(&self, sigs: &SignalView<'_>) -> u64 {
        sigs.get(self.stop)
    }

    /// Drives the void mask.
    pub fn write_void(&self, sigs: &mut SignalView<'_>, mask: u64) {
        sigs.set(self.void, mask);
    }

    /// Drives the stop mask.
    pub fn write_stop(&self, sigs: &mut SignalView<'_>, mask: u64) {
        sigs.set(self.stop, mask);
    }

    /// Reads every data plane into `buf` (must hold `width` words).
    pub fn read_planes_into(&self, sigs: &SignalView<'_>, buf: &mut [u64]) {
        for (b, &plane) in self.data.iter().enumerate() {
            buf[b] = sigs.get(plane);
        }
    }

    /// Drives every data plane from `planes`.
    pub fn write_planes(&self, sigs: &mut SignalView<'_>, planes: &[u64]) {
        for (&plane, &word) in self.data.iter().zip(planes) {
            sigs.set(plane, word);
        }
    }

    /// Extracts lane `lane`'s payload from gathered plane words.
    pub fn lane_value(planes: &[u64], lane: usize) -> u64 {
        planes
            .iter()
            .enumerate()
            .fold(0, |v, (b, &p)| v | ((p >> lane) & 1) << b)
    }

    /// Deposits `value` into lane `lane` of `planes` (whose lane bits
    /// must be clear).
    pub fn scatter_value(planes: &mut [u64], lane: usize, mut value: u64) {
        while value != 0 {
            let b = value.trailing_zeros() as usize;
            value &= value - 1;
            if b < planes.len() {
                planes[b] |= 1 << lane;
            }
        }
    }
}

/// Asserts a packed component's lane count is in `1..=LANES`.
fn assert_lanes(lanes: usize) {
    assert!(
        (1..=LANES).contains(&lanes),
        "a packed component serves 1..={LANES} lanes, got {lanes}"
    );
}

/// The lane-batched twin of [`RelayStation`](crate::RelayStation): one 2-place buffer per
/// lane, all lanes advanced with bitwise mask algebra (presence masks
/// `main`/`aux` plus value planes). Lane `k` follows the scalar relay's
/// state machine bit-for-bit; a full `aux` lane that is offered a third
/// token records a violation on *that lane's* counter.
#[derive(Debug)]
pub struct PackedRelayStation {
    name: String,
    upstream: PackedLisChannel,
    downstream: PackedLisChannel,
    /// Through-register presence, one lane per bit.
    main_p: u64,
    /// Overflow-register presence, one lane per bit.
    aux_p: u64,
    /// Registered back-pressure towards upstream, one lane per bit.
    stop_up: u64,
    /// Through-register payload planes.
    main_v: Vec<u64>,
    /// Overflow-register payload planes.
    aux_v: Vec<u64>,
    /// One counter per lane.
    violations: Vec<ViolationCounter>,
}

impl PackedRelayStation {
    /// Creates a packed relay forwarding `upstream` to `downstream`,
    /// with one violation counter per lane.
    ///
    /// # Panics
    ///
    /// Panics if the channels disagree on width or the lane count is
    /// not in `1..=LANES`.
    pub fn new(
        name: impl Into<String>,
        upstream: PackedLisChannel,
        downstream: PackedLisChannel,
        violations: Vec<ViolationCounter>,
    ) -> Self {
        assert_eq!(upstream.width, downstream.width, "relay channel widths");
        assert_lanes(violations.len());
        let planes = upstream.width as usize;
        PackedRelayStation {
            name: name.into(),
            upstream,
            downstream,
            main_p: 0,
            aux_p: 0,
            stop_up: 0,
            main_v: vec![0; planes],
            aux_v: vec![0; planes],
            violations,
        }
    }

    /// Inserts `count` packed relay stations between `from` and a fresh
    /// tail channel, returning the tail — the packed twin of
    /// [`RelayStation::chain`](crate::RelayStation::chain).
    pub fn chain(
        system: &mut System,
        name: &str,
        from: PackedLisChannel,
        count: usize,
        violations: &[ViolationCounter],
    ) -> PackedLisChannel {
        let mut current = from;
        for i in 0..count {
            let next = PackedLisChannel::new(system, &format!("{name}_seg{i}"), current.width);
            system.add_component(PackedRelayStation::new(
                format!("{name}_rs{i}"),
                current,
                next.clone(),
                violations.to_vec(),
            ));
            current = next;
        }
        current
    }

    /// Tokens currently buffered across all lanes (diagnostics).
    pub fn occupancy(&self) -> usize {
        (self.main_p.count_ones() + self.aux_p.count_ones()) as usize
    }
}

impl Component for PackedRelayStation {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.downstream
            .producer_ports()
            .merge(self.upstream.consumer_ports())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        // Lanes without a token present void with zeroed data — exactly
        // what the scalar relay's `Token::Void.to_wires()` drives.
        for (b, &plane) in self.downstream.data.iter().enumerate() {
            sigs.set(plane, self.main_v[b] & self.main_p);
        }
        self.downstream.write_void(sigs, !self.main_p);
        self.upstream.write_stop(sigs, self.stop_up);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        // Lane-wise transcription of the scalar relay's four steps; each
        // mask below is "the lanes where the scalar branch fires".
        let up_void = self.upstream.read_void(sigs);
        let incoming = !self.stop_up & !up_void;
        let stalled = self.downstream.read_stop(sigs);

        // 1. Downstream consumes main unless it stalls.
        let consume = self.main_p & !stalled;
        self.main_p &= !consume;
        // 2. Aux backfills the through register.
        let backfill = self.aux_p & !self.main_p;
        if backfill != 0 {
            for (m, a) in self.main_v.iter_mut().zip(&self.aux_v) {
                *m = (*m & !backfill) | (a & backfill);
            }
            self.main_p |= backfill;
            self.aux_p &= !backfill;
        }
        // 3. Absorb the incoming token: into main, else aux, else a
        //    violation on that lane.
        if incoming != 0 {
            let to_main = incoming & !self.main_p;
            let rest = incoming & !to_main;
            let to_aux = rest & !self.aux_p;
            for (b, (m, a)) in self.main_v.iter_mut().zip(&mut self.aux_v).enumerate() {
                let up = sigs.get(self.upstream.data[b]);
                *m = (*m & !to_main) | (up & to_main);
                *a = (*a & !to_aux) | (up & to_aux);
            }
            self.main_p |= to_main;
            self.aux_p |= to_aux;
            let mut overflow = rest & !to_aux;
            while overflow != 0 {
                let lane = overflow.trailing_zeros() as usize;
                overflow &= overflow - 1;
                self.violations[lane].record();
            }
        }
        // 4. Back-pressure upstream while the overflow slot is in use.
        let stop = self.aux_p;
        let changed = consume != 0 || backfill != 0 || incoming != 0 || stop != self.stop_up;
        self.stop_up = stop;
        Activity::from_changed(changed)
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.main_p);
        out.push(self.aux_p);
        out.push(self.stop_up);
        out.extend(self.main_v.iter().copied());
        out.extend(self.aux_v.iter().copied());
    }

    fn load_state(&mut self, data: &[u64]) {
        let planes = self.main_v.len();
        self.main_p = data[0];
        self.aux_p = data[1];
        self.stop_up = data[2];
        self.main_v.copy_from_slice(&data[3..3 + planes]);
        self.aux_v
            .copy_from_slice(&data[3 + planes..3 + 2 * planes]);
    }

    fn save_lane_state(&self, lane: usize, out: &mut Vec<u64>) {
        let bit = 1u64 << lane;
        let mut flags = 0u64;
        flags |= u64::from(self.main_p & bit != 0);
        flags |= u64::from(self.aux_p & bit != 0) << 1;
        flags |= u64::from(self.stop_up & bit != 0) << 2;
        out.push(flags);
        out.push(PackedLisChannel::lane_value(&self.main_v, lane));
        out.push(PackedLisChannel::lane_value(&self.aux_v, lane));
    }

    fn load_lane_state(&mut self, lane: usize, data: &[u64]) {
        let bit = 1u64 << lane;
        let set = |plane: &mut u64, on: bool| {
            if on {
                *plane |= bit;
            } else {
                *plane &= !bit;
            }
        };
        set(&mut self.main_p, data[0] & 1 != 0);
        set(&mut self.aux_p, data[0] & 2 != 0);
        set(&mut self.stop_up, data[0] & 4 != 0);
        for plane in self.main_v.iter_mut().chain(self.aux_v.iter_mut()) {
            *plane &= !bit;
        }
        PackedLisChannel::scatter_value(&mut self.main_v, lane, data[1]);
        PackedLisChannel::scatter_value(&mut self.aux_v, lane, data[2]);
    }
}

/// The zero-latency packed connector: forwards the token planes
/// downstream and the stop mask upstream, fully combinationally — the
/// packed twin of the SoC builder's scalar wire.
#[derive(Debug)]
pub struct PackedWire {
    name: String,
    upstream: PackedLisChannel,
    downstream: PackedLisChannel,
}

impl PackedWire {
    /// Creates a wire forwarding `upstream` to `downstream`.
    ///
    /// # Panics
    ///
    /// Panics if the channels disagree on width.
    pub fn new(
        name: impl Into<String>,
        upstream: PackedLisChannel,
        downstream: PackedLisChannel,
    ) -> Self {
        assert_eq!(upstream.width, downstream.width, "wire channel widths");
        PackedWire {
            name: name.into(),
            upstream,
            downstream,
        }
    }
}

impl Component for PackedWire {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.upstream
            .downstream_reads()
            .merge(self.upstream.consumer_ports())
            .merge(self.downstream.producer_ports())
            .merge(self.downstream.stop_reads())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        for (&up, &down) in self.upstream.data.iter().zip(&self.downstream.data) {
            let v = sigs.get(up);
            sigs.set(down, v);
        }
        let void = self.upstream.read_void(sigs);
        self.downstream.write_void(sigs, void);
        let stop = self.downstream.read_stop(sigs);
        self.upstream.write_stop(sigs, stop);
    }

    fn tick(&mut self, _sigs: &SignalView<'_>) -> Activity {
        Activity::Quiescent
    }
}

/// One lane of a [`PackedTokenSource`]: its own queue, stall schedule
/// and RNG stream — seeded exactly like a solo [`TokenSource`](crate::TokenSource).
#[derive(Debug)]
struct SourceLane {
    pending: VecDeque<u64>,
    pattern: StallPattern,
    rng: StdRng,
    sent: Arc<Mutex<Vec<u64>>>,
}

/// The lane-batched twin of [`TokenSource`](crate::TokenSource): one producer driving up to
/// [`LANES`] independent token sequences onto a packed channel, each
/// lane honouring its own stall pattern and back-pressure bit.
#[derive(Debug)]
pub struct PackedTokenSource {
    name: String,
    channel: PackedLisChannel,
    lanes: Vec<SourceLane>,
    /// Current-cycle random stalls, one lane per bit.
    stalling: u64,
    /// Scratch plane buffer reused across evals.
    planes: Vec<u64>,
}

impl PackedTokenSource {
    /// Creates a packed source; `lanes[k]` supplies lane `k`'s token
    /// stream, stall pattern and seed.
    ///
    /// # Panics
    ///
    /// Panics if the lane count is not in `1..=LANES` or any pattern is
    /// invalid.
    pub fn new(
        name: impl Into<String>,
        channel: PackedLisChannel,
        lanes: Vec<(Vec<u64>, StallPattern, u64)>,
    ) -> Self {
        assert_lanes(lanes.len());
        let planes = channel.width as usize;
        let lanes = lanes
            .into_iter()
            .map(|(tokens, pattern, seed)| {
                pattern.validate();
                SourceLane {
                    pending: tokens.into_iter().collect(),
                    pattern,
                    rng: StdRng::seed_from_u64(seed),
                    sent: Arc::new(Mutex::new(Vec::new())),
                }
            })
            .collect();
        PackedTokenSource {
            name: name.into(),
            channel,
            lanes,
            stalling: 0,
            planes: vec![0; planes],
        }
    }

    /// Handle to the tokens lane `lane` actually sent (in order).
    pub fn sent(&self, lane: usize) -> Arc<Mutex<Vec<u64>>> {
        Arc::clone(&self.lanes[lane].sent)
    }

    /// Tokens lane `lane` has not yet emitted.
    pub fn remaining(&self, lane: usize) -> usize {
        self.lanes[lane].pending.len()
    }

    fn stalled_at(&self, lane: usize, cycle: u64) -> bool {
        match self.lanes[lane].pattern {
            StallPattern::Random(_) => (self.stalling >> lane) & 1 == 1,
            pattern => pattern.scheduled_stall_at(cycle),
        }
    }
}

impl Component for PackedTokenSource {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.producer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let cycle = sigs.cycle();
        // Unpopulated lanes stay void forever.
        let mut void = u64::MAX;
        let mut planes = std::mem::take(&mut self.planes);
        planes.fill(0);
        for lane in 0..self.lanes.len() {
            if self.stalled_at(lane, cycle) {
                continue;
            }
            if let Some(&v) = self.lanes[lane].pending.front() {
                void &= !(1u64 << lane);
                PackedLisChannel::scatter_value(&mut planes, lane, v);
            }
        }
        self.channel.write_planes(sigs, &planes);
        self.channel.write_void(sigs, void);
        self.planes = planes;
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let cycle = sigs.cycle();
        let stop = self.channel.read_stop(sigs);
        for lane in 0..self.lanes.len() {
            if !self.stalled_at(lane, cycle) && (stop >> lane) & 1 == 0 {
                if let Some(v) = self.lanes[lane].pending.pop_front() {
                    self.lanes[lane].sent.lock().unwrap().push(v);
                }
            }
            // Decide next cycle's stall; each lane's RNG stream is state
            // and must advance exactly once per cycle, as in a solo run.
            if let StallPattern::Random(p) = self.lanes[lane].pattern {
                let bit = 1u64 << lane;
                if self.lanes[lane].rng.random_bool(p) {
                    self.stalling |= bit;
                } else {
                    self.stalling &= !bit;
                }
            }
        }
        // Per-lane activity is a solo-run superset: a packed source
        // ticks every cycle (the batch rarely quiesces as a whole, and
        // each lane's update is a pure function of its own state and
        // signals, so extra executions change nothing).
        Activity::Active
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.lanes.len() as u64);
        out.push(self.stalling);
        for lane in &self.lanes {
            out.extend(lane.rng.state());
            out.push(lane.pending.len() as u64);
            out.extend(lane.pending.iter().copied());
            let sent = lane.sent.lock().unwrap();
            out.push(sent.len() as u64);
            out.extend(sent.iter().copied());
        }
    }

    fn load_state(&mut self, data: &[u64]) {
        assert_eq!(data[0] as usize, self.lanes.len(), "checkpoint lane count");
        self.stalling = data[1];
        let mut at = 2;
        for lane in &mut self.lanes {
            lane.rng = StdRng::from_state([data[at], data[at + 1], data[at + 2], data[at + 3]]);
            at += 4;
            let n = data[at] as usize;
            lane.pending = data[at + 1..at + 1 + n].iter().copied().collect();
            at += 1 + n;
            let m = data[at] as usize;
            *lane.sent.lock().unwrap() = data[at + 1..at + 1 + m].to_vec();
            at += 1 + m;
        }
    }
}

/// One lane of a [`PackedTokenSink`].
#[derive(Debug)]
struct SinkLane {
    pattern: StallPattern,
    rng: StdRng,
    received: Arc<Mutex<Vec<u64>>>,
    cycles_busy: u64,
    cycles_total: u64,
}

/// The lane-batched twin of [`TokenSink`](crate::TokenSink): one consumer recording up to
/// [`LANES`] independent informative streams from a packed channel,
/// each lane asserting its own back-pressure bit.
#[derive(Debug)]
pub struct PackedTokenSink {
    name: String,
    channel: PackedLisChannel,
    lanes: Vec<SinkLane>,
    /// Current-cycle random stalls, one lane per bit.
    stalling: u64,
    /// Scratch plane buffer reused across ticks.
    planes: Vec<u64>,
}

impl PackedTokenSink {
    /// Creates a packed sink; `lanes[k]` supplies lane `k`'s stall
    /// pattern and seed.
    ///
    /// # Panics
    ///
    /// Panics if the lane count is not in `1..=LANES` or any pattern is
    /// invalid.
    pub fn new(
        name: impl Into<String>,
        channel: PackedLisChannel,
        lanes: Vec<(StallPattern, u64)>,
    ) -> Self {
        assert_lanes(lanes.len());
        let planes = channel.width as usize;
        let lanes = lanes
            .into_iter()
            .map(|(pattern, seed)| {
                pattern.validate();
                SinkLane {
                    pattern,
                    rng: StdRng::seed_from_u64(seed),
                    received: Arc::new(Mutex::new(Vec::new())),
                    cycles_busy: 0,
                    cycles_total: 0,
                }
            })
            .collect();
        PackedTokenSink {
            name: name.into(),
            channel,
            lanes,
            stalling: 0,
            planes: vec![0; planes],
        }
    }

    /// Handle to the informative tokens lane `lane` received (in
    /// order).
    pub fn received(&self, lane: usize) -> Arc<Mutex<Vec<u64>>> {
        Arc::clone(&self.lanes[lane].received)
    }

    fn stalled_at(&self, lane: usize, cycle: u64) -> bool {
        match self.lanes[lane].pattern {
            StallPattern::Random(_) => (self.stalling >> lane) & 1 == 1,
            pattern => pattern.scheduled_stall_at(cycle),
        }
    }

    fn stop_mask(&self, cycle: u64) -> u64 {
        // Unpopulated lanes see permanent back-pressure.
        let mut stop = u64::MAX;
        for lane in 0..self.lanes.len() {
            if !self.stalled_at(lane, cycle) {
                stop &= !(1u64 << lane);
            }
        }
        stop
    }
}

impl Component for PackedTokenSink {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.channel.consumer_ports()
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let stop = self.stop_mask(sigs.cycle());
        self.channel.write_stop(sigs, stop);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let cycle = sigs.cycle();
        // Lanes taking a token this cycle: accepting and non-void.
        let take = !self.stop_mask(cycle) & !self.channel.read_void(sigs);
        if take != 0 {
            let mut planes = std::mem::take(&mut self.planes);
            self.channel.read_planes_into(sigs, &mut planes);
            let mut lanes = take;
            while lanes != 0 {
                let lane = lanes.trailing_zeros() as usize;
                lanes &= lanes - 1;
                let v = PackedLisChannel::lane_value(&planes, lane);
                self.lanes[lane].received.lock().unwrap().push(v);
                self.lanes[lane].cycles_busy += 1;
            }
            self.planes = planes;
        }
        for lane in 0..self.lanes.len() {
            self.lanes[lane].cycles_total += 1;
            // As for the packed source: every lane's RNG stream must
            // advance exactly once per cycle.
            if let StallPattern::Random(p) = self.lanes[lane].pattern {
                let bit = 1u64 << lane;
                if self.lanes[lane].rng.random_bool(p) {
                    self.stalling |= bit;
                } else {
                    self.stalling &= !bit;
                }
            }
        }
        Activity::Active
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.lanes.len() as u64);
        out.push(self.stalling);
        for lane in &self.lanes {
            out.extend(lane.rng.state());
            out.push(lane.cycles_busy);
            out.push(lane.cycles_total);
            let received = lane.received.lock().unwrap();
            out.push(received.len() as u64);
            out.extend(received.iter().copied());
        }
    }

    fn load_state(&mut self, data: &[u64]) {
        assert_eq!(data[0] as usize, self.lanes.len(), "checkpoint lane count");
        self.stalling = data[1];
        let mut at = 2;
        for lane in &mut self.lanes {
            lane.rng = StdRng::from_state([data[at], data[at + 1], data[at + 2], data[at + 3]]);
            lane.cycles_busy = data[at + 4];
            lane.cycles_total = data[at + 5];
            let n = data[at + 6] as usize;
            *lane.received.lock().unwrap() = data[at + 7..at + 7 + n].to_vec();
            at += 7 + n;
        }
    }
}

/// Zero-latency bridge from a packed channel to per-lane scalar
/// channels: lane `k`'s token fans out to `down[k]` and the per-lane
/// `stop` wires gather back into the packed stop mask. Used to feed
/// per-lane behavioural wrappers from packed plumbing.
#[derive(Debug)]
pub struct LaneDemux {
    name: String,
    upstream: PackedLisChannel,
    downstream: Vec<LisChannel>,
}

impl LaneDemux {
    /// Creates a demux from `upstream` onto one scalar channel per
    /// lane.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree or the lane count is not in
    /// `1..=LANES`.
    pub fn new(
        name: impl Into<String>,
        upstream: PackedLisChannel,
        downstream: Vec<LisChannel>,
    ) -> Self {
        assert_lanes(downstream.len());
        for ch in &downstream {
            assert_eq!(ch.width, upstream.width, "demux channel widths");
        }
        LaneDemux {
            name: name.into(),
            upstream,
            downstream,
        }
    }
}

impl Component for LaneDemux {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        let mut p = self
            .upstream
            .downstream_reads()
            .merge(self.upstream.consumer_ports());
        for ch in &self.downstream {
            p = p.merge(ch.producer_ports()).merge(ch.stop_reads());
        }
        p
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let void = self.upstream.read_void(sigs);
        let mut stop = u64::MAX;
        for (lane, ch) in self.downstream.iter().enumerate() {
            let token = if (void >> lane) & 1 == 1 {
                Token::Void
            } else {
                let mut v = 0;
                for (b, &plane) in self.upstream.data.iter().enumerate() {
                    v |= ((sigs.get(plane) >> lane) & 1) << b;
                }
                Token::Data(v)
            };
            ch.write_token(sigs, token);
            if !ch.read_stop(sigs) {
                stop &= !(1u64 << lane);
            }
        }
        self.upstream.write_stop(sigs, stop);
    }

    fn tick(&mut self, _sigs: &SignalView<'_>) -> Activity {
        Activity::Quiescent
    }
}

/// Zero-latency bridge from per-lane scalar channels to a packed
/// channel: the inverse of [`LaneDemux`], gathering per-lane tokens
/// into planes and fanning the packed stop mask back out. Used to
/// collect per-lane behavioural wrappers' outputs into packed plumbing.
#[derive(Debug)]
pub struct LaneMux {
    name: String,
    upstream: Vec<LisChannel>,
    downstream: PackedLisChannel,
}

impl LaneMux {
    /// Creates a mux from one scalar channel per lane onto
    /// `downstream`.
    ///
    /// # Panics
    ///
    /// Panics if widths disagree or the lane count is not in
    /// `1..=LANES`.
    pub fn new(
        name: impl Into<String>,
        upstream: Vec<LisChannel>,
        downstream: PackedLisChannel,
    ) -> Self {
        assert_lanes(upstream.len());
        for ch in &upstream {
            assert_eq!(ch.width, downstream.width, "mux channel widths");
        }
        LaneMux {
            name: name.into(),
            upstream,
            downstream,
        }
    }
}

impl Component for LaneMux {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        let mut p = self
            .downstream
            .producer_ports()
            .merge(self.downstream.stop_reads());
        for ch in &self.upstream {
            p = p.merge(ch.downstream_reads()).merge(ch.consumer_ports());
        }
        p
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let mut void = u64::MAX;
        let mut planes = vec![0u64; self.downstream.width as usize];
        let stop = self.downstream.read_stop(sigs);
        for (lane, ch) in self.upstream.iter().enumerate() {
            if let Token::Data(v) = ch.read_token(sigs) {
                void &= !(1u64 << lane);
                PackedLisChannel::scatter_value(&mut planes, lane, v);
            }
            ch.write_stop(sigs, (stop >> lane) & 1 == 1);
        }
        self.downstream.write_planes(sigs, &planes);
        self.downstream.write_void(sigs, void);
    }

    fn tick(&mut self, _sigs: &SignalView<'_>) -> Activity {
        Activity::Quiescent
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{TokenSink, TokenSource};
    use crate::relay::RelayStation;

    /// Per-lane traffic of the equivalence tests: distinct streams,
    /// stall regimes and seeds per lane.
    fn lane_traffic(lane: usize) -> (Vec<u64>, f64, u64, f64, u64) {
        let tokens: Vec<u64> = (1..=25).map(|v| v * (lane as u64 + 3)).collect();
        let src_stall = [0.0, 0.3, 0.55, 0.15][lane % 4];
        let sink_stall = [0.4, 0.0, 0.2, 0.6][lane % 4];
        (
            tokens,
            src_stall,
            7 + lane as u64,
            sink_stall,
            90 + lane as u64,
        )
    }

    /// One solo scalar pipeline: source → `relays` relay stations →
    /// sink, with lane `lane`'s traffic.
    fn solo_run(lane: usize, relays: usize, cycles: u64) -> (Vec<u64>, Vec<u64>, u64) {
        let (tokens, ss, s_seed, ks, k_seed) = lane_traffic(lane);
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let a = LisChannel::new(&mut sys, "a", 16);
        let src = TokenSource::new("src", a, tokens).with_stalls(ss, s_seed);
        let sent = src.sent();
        sys.add_component(src);
        let out = RelayStation::chain(&mut sys, "link", a, relays, &violations);
        let sink = TokenSink::new("sink", out).with_stalls(ks, k_seed);
        let got = sink.received();
        sys.add_component(sink);
        sys.run(cycles).unwrap();
        let received = got.lock().unwrap().clone();
        let sent = sent.lock().unwrap().clone();
        (received, sent, violations.count())
    }

    /// The packed twin: every lane through one packed pipeline.
    fn packed_run(lanes: usize, relays: usize, cycles: u64) -> Vec<(Vec<u64>, Vec<u64>, u64)> {
        let mut sys = System::new();
        let violations: Vec<ViolationCounter> =
            (0..lanes).map(|_| ViolationCounter::new()).collect();
        let a = PackedLisChannel::new(&mut sys, "a", 16);
        let src = PackedTokenSource::new(
            "src",
            a.clone(),
            (0..lanes)
                .map(|lane| {
                    let (tokens, ss, s_seed, _, _) = lane_traffic(lane);
                    (tokens, StallPattern::from(ss), s_seed)
                })
                .collect(),
        );
        let sent: Vec<_> = (0..lanes).map(|l| src.sent(l)).collect();
        sys.add_component(src);
        let out = PackedRelayStation::chain(&mut sys, "link", a, relays, &violations);
        let sink = PackedTokenSink::new(
            "sink",
            out,
            (0..lanes)
                .map(|lane| {
                    let (_, _, _, ks, k_seed) = lane_traffic(lane);
                    (StallPattern::from(ks), k_seed)
                })
                .collect(),
        );
        let got: Vec<_> = (0..lanes).map(|l| sink.received(l)).collect();
        sys.add_component(sink);
        sys.run(cycles).unwrap();
        (0..lanes)
            .map(|l| {
                (
                    got[l].lock().unwrap().clone(),
                    sent[l].lock().unwrap().clone(),
                    violations[l].count(),
                )
            })
            .collect()
    }

    #[test]
    fn packed_channel_powers_up_void_on_every_lane() {
        let mut sys = System::new();
        let ch = PackedLisChannel::new(&mut sys, "c", 8);
        assert_eq!(sys.signal_count(), 10);
        assert_eq!(sys.peek(ch.void), u64::MAX);
    }

    #[test]
    fn packed_relay_pipeline_lanes_match_solo_runs() {
        let lanes = 7;
        let packed = packed_run(lanes, 4, 600);
        for (lane, got) in packed.iter().enumerate() {
            let want = solo_run(lane, 4, 600);
            assert!(!want.0.is_empty(), "lane {lane} must deliver tokens");
            assert_eq!(got, &want, "lane {lane} diverges from its solo twin");
        }
    }

    #[test]
    fn all_64_lanes_run_in_one_packed_pipeline() {
        let packed = packed_run(LANES, 2, 250);
        for (lane, got) in packed.iter().enumerate() {
            let want = solo_run(lane, 2, 250);
            assert_eq!(got, &want, "lane {lane}");
        }
    }

    #[test]
    fn demux_and_mux_bridge_to_scalar_components() {
        // packed source → demux → per-lane scalar relay → mux → packed
        // sink must equal the all-scalar solo pipeline with one relay.
        let lanes = 5;
        let cycles = 500;
        let mut sys = System::new();
        let violations: Vec<ViolationCounter> =
            (0..lanes).map(|_| ViolationCounter::new()).collect();
        let a = PackedLisChannel::new(&mut sys, "a", 16);
        let src = PackedTokenSource::new(
            "src",
            a.clone(),
            (0..lanes)
                .map(|lane| {
                    let (tokens, ss, s_seed, _, _) = lane_traffic(lane);
                    (tokens, StallPattern::from(ss), s_seed)
                })
                .collect(),
        );
        sys.add_component(src);
        let scalar_in: Vec<LisChannel> = (0..lanes)
            .map(|l| LisChannel::new(&mut sys, &format!("si{l}"), 16))
            .collect();
        let scalar_out: Vec<LisChannel> = (0..lanes)
            .map(|l| LisChannel::new(&mut sys, &format!("so{l}"), 16))
            .collect();
        sys.add_component(LaneDemux::new("demux", a, scalar_in.clone()));
        for (l, (i, o)) in scalar_in.iter().zip(&scalar_out).enumerate() {
            sys.add_component(RelayStation::new(
                format!("rs{l}"),
                *i,
                *o,
                violations[l].clone(),
            ));
        }
        let b = PackedLisChannel::new(&mut sys, "b", 16);
        sys.add_component(LaneMux::new("mux", scalar_out, b.clone()));
        let sink = PackedTokenSink::new(
            "sink",
            b,
            (0..lanes)
                .map(|lane| {
                    let (_, _, _, ks, k_seed) = lane_traffic(lane);
                    (StallPattern::from(ks), k_seed)
                })
                .collect(),
        );
        let got: Vec<_> = (0..lanes).map(|l| sink.received(l)).collect();
        sys.add_component(sink);
        sys.run(cycles).unwrap();
        for lane in 0..lanes {
            let want = solo_run(lane, 1, cycles);
            assert_eq!(
                got[lane].lock().unwrap().clone(),
                want.0,
                "lane {lane} stream"
            );
            assert_eq!(violations[lane].count(), want.2, "lane {lane} violations");
        }
    }

    #[test]
    fn packed_pipeline_checkpoint_round_trips() {
        let lanes = 6;
        let build = |sys: &mut System| {
            let violations: Vec<ViolationCounter> =
                (0..lanes).map(|_| ViolationCounter::new()).collect();
            let a = PackedLisChannel::new(sys, "a", 16);
            sys.add_component(PackedTokenSource::new(
                "src",
                a.clone(),
                (0..lanes)
                    .map(|lane| {
                        let (tokens, ss, s_seed, _, _) = lane_traffic(lane);
                        (tokens, StallPattern::from(ss), s_seed)
                    })
                    .collect(),
            ));
            let out = PackedRelayStation::chain(sys, "link", a, 3, &violations);
            let sink = PackedTokenSink::new(
                "sink",
                out,
                (0..lanes)
                    .map(|lane| {
                        let (_, _, _, ks, k_seed) = lane_traffic(lane);
                        (StallPattern::from(ks), k_seed)
                    })
                    .collect(),
            );
            let got: Vec<_> = (0..lanes).map(|l| sink.received(l)).collect();
            sys.add_component(sink);
            got
        };
        let mut reference = System::new();
        let want = build(&mut reference);
        reference.run(400).unwrap();
        let mut first = System::new();
        build(&mut first);
        first.run(150).unwrap();
        let snap = first.checkpoint();
        let mut resumed = System::new();
        let got = build(&mut resumed);
        resumed.restore(&snap);
        resumed.run(250).unwrap();
        for lane in 0..lanes {
            assert_eq!(
                got[lane].lock().unwrap().clone(),
                want[lane].lock().unwrap().clone(),
                "lane {lane}"
            );
        }
    }

    /// Per-lane save/load on the packed relay: writing one lane's state
    /// back must reproduce exactly the full-state words, and must not
    /// disturb any other lane.
    #[test]
    fn packed_relay_lane_state_round_trips() {
        let counters: Vec<_> = (0..LANES).map(|_| ViolationCounter::new()).collect();
        let mut sys = System::new();
        let up = PackedLisChannel::new(&mut sys, "up", 16);
        let down = PackedLisChannel::new(&mut sys, "down", 16);
        let mut relay = PackedRelayStation::new("rs", up, down, counters);
        // Hand-fill a mixed occupancy: lane 3 holds main+aux, lane 7
        // main only, others empty.
        relay.main_p = (1 << 3) | (1 << 7);
        relay.aux_p = 1 << 3;
        relay.stop_up = 1 << 3;
        PackedLisChannel::scatter_value(&mut relay.main_v, 3, 0xAB);
        PackedLisChannel::scatter_value(&mut relay.main_v, 7, 0x55);
        PackedLisChannel::scatter_value(&mut relay.aux_v, 3, 0xCD);
        let mut full = Vec::new();
        relay.save_state(&mut full);

        let mut lane3 = Vec::new();
        relay.save_lane_state(3, &mut lane3);
        assert_eq!(lane3, vec![0b111, 0xAB, 0xCD]);
        let mut lane0 = Vec::new();
        relay.save_lane_state(0, &mut lane0);
        assert_eq!(lane0, vec![0, 0, 0]);

        // Clobber lane 3, restore it, and check nothing else moved.
        relay.load_lane_state(3, &[0, 0, 0]);
        let mut l7 = Vec::new();
        relay.save_lane_state(7, &mut l7);
        assert_eq!(l7, vec![0b001, 0x55, 0], "lane 7 untouched by lane 3 load");
        relay.load_lane_state(3, &lane3);
        let mut again = Vec::new();
        relay.save_state(&mut again);
        assert_eq!(again, full, "lane round trip restores the full state");
    }
}

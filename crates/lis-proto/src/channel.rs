//! Channel wiring: the signal bundle of one point-to-point LIS link.

use crate::token::Token;
use lis_sim::{Ports, SignalId, SignalView, System};

/// The three wires of a latency-insensitive channel segment:
/// `data`/`void` travel downstream, `stop` travels upstream.
///
/// These are exactly the `voidin/out` and `stopin/out` signals of
/// Carloni et al. (the paper's Figure 1 interface).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LisChannel {
    /// Payload wires (downstream).
    pub data: SignalId,
    /// Void flag (downstream): high marks a non-informative cycle.
    pub void: SignalId,
    /// Back-pressure (upstream): high tells the producer to hold.
    pub stop: SignalId,
    /// Payload width in bits.
    pub width: u32,
}

impl LisChannel {
    /// Allocates the three signals of a channel in `system`.
    ///
    /// The `void` wire powers up high (idle channels carry void, not
    /// stale data).
    pub fn new(system: &mut System, name: &str, width: u32) -> Self {
        let data = system.add_signal(format!("{name}_data"), width);
        let void = system.add_signal(format!("{name}_void"), 1);
        let stop = system.add_signal(format!("{name}_stop"), 1);
        system.poke_bool(void, true);
        LisChannel {
            data,
            void,
            stop,
            width,
        }
    }

    /// Declared ports of a *registered* producer on this channel (Moore
    /// outputs): eval writes `data`/`void`; `stop` is sampled at the
    /// clock edge, so it is a tick-phase read — which is also what wakes
    /// a quiescent producer when downstream back-pressure changes.
    pub fn producer_ports(&self) -> Ports {
        Ports::writes_only([self.data, self.void]).tick_read(self.stop)
    }

    /// Declared ports of a *registered* consumer: eval writes `stop`;
    /// the token wires are sampled at the clock edge (tick-phase reads,
    /// waking a quiescent consumer when a token arrives).
    pub fn consumer_ports(&self) -> Ports {
        Ports::writes_only([self.stop])
            .tick_read(self.data)
            .tick_read(self.void)
    }

    /// Extra declaration for a stage reading the token wires
    /// *combinationally* during eval (zero-latency connectors,
    /// gate-level shells).
    pub fn downstream_reads(&self) -> Ports {
        Ports::reads_only([self.data, self.void])
    }

    /// Extra declaration for a stage reading back-pressure
    /// combinationally during eval.
    pub fn stop_reads(&self) -> Ports {
        Ports::reads_only([self.stop])
    }

    /// Reads the downstream token from a signal view.
    pub fn read_token(&self, sigs: &SignalView<'_>) -> Token {
        Token::from_wires(sigs.get(self.data), sigs.get_bool(self.void))
    }

    /// Drives the downstream token onto a signal view.
    pub fn write_token(&self, sigs: &mut SignalView<'_>, token: Token) {
        let (data, void) = token.to_wires();
        sigs.set(self.data, data);
        sigs.set_bool(self.void, void);
    }

    /// Reads the upstream back-pressure wire.
    pub fn read_stop(&self, sigs: &SignalView<'_>) -> bool {
        sigs.get_bool(self.stop)
    }

    /// Drives the upstream back-pressure wire.
    pub fn write_stop(&self, sigs: &mut SignalView<'_>, stop: bool) {
        sigs.set_bool(self.stop, stop);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lis_sim::FnComponent;

    #[test]
    fn channel_allocates_three_signals() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 8);
        assert_eq!(sys.signal_count(), 3);
        assert_eq!(sys.signal(ch.data).width, 8);
        assert_eq!(sys.signal(ch.void).width, 1);
        assert!(sys.peek_bool(ch.void), "channels power up void");
    }

    #[test]
    fn token_round_trip_through_signals() {
        let mut sys = System::new();
        let ch = LisChannel::new(&mut sys, "c", 16);
        let seen = std::sync::Arc::new(std::sync::Mutex::new(Token::Void));
        let seen2 = std::sync::Arc::clone(&seen);
        sys.add_component(FnComponent::new(
            "probe",
            ch.producer_ports(),
            move |sigs: &mut SignalView<'_>| {
                ch.write_token(sigs, Token::Data(0xABC));
                // Writes imply read-back permission.
                *seen2.lock().unwrap() = ch.read_token(sigs);
            },
            |_| {},
        ));
        sys.settle().unwrap();
        assert_eq!(*seen.lock().unwrap(), Token::Data(0xABC));
    }
}

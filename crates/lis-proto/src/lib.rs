//! # lis-proto — the latency-insensitive protocol layer
//!
//! Behavioural building blocks of a latency-insensitive system, after
//! Carloni, McMillan & Sangiovanni-Vincentelli:
//!
//! * [`Token`] — informative data vs. the void event `τ`;
//!   [`latency_equivalent`] compares streams modulo stalling, the
//!   correctness criterion of the whole methodology.
//! * [`LisChannel`] — the `data`/`void`/`stop` wire bundle.
//! * [`RelayStation`] — the 2-place buffered repeater that legalizes
//!   wire pipelining; [`PlainRegisterStage`] is Casu & Macchiarulo's
//!   protocol-free flip-flop alternative (correct only for perfectly
//!   regular streams).
//! * [`InputPort`] / [`OutputPort`] — the FIFO port adapters of the
//!   paper's Figure 2 (`pop`/`not_empty`, `push`/`not_full`).
//! * [`Pearl`] — the suspendable-IP trait every wrapper encapsulates;
//!   [`AccumulatorPearl`] is a minimal example implementation.
//! * [`TokenSource`] / [`TokenSink`] — test-bench endpoints with
//!   [`StallPattern`]-driven stall injection (seeded-random or
//!   clock-scheduled).
//! * [`PackedLisChannel`] — the bit-plane lane-batched channel behind
//!   scenario fleets, with [`PackedRelayStation`],
//!   [`PackedTokenSource`], [`PackedTokenSink`], [`PackedWire`] and
//!   the [`LaneDemux`]/[`LaneMux`] bridges to scalar plumbing; every
//!   lane is bit-identical to its scalar twin.
//! * [`SeqSource`] / [`SeqSink`] (and their packed twins) — the
//!   model-checking adversary endpoints: sequence-numbered feed and
//!   capture with externally-scripted or atomically-rewritable stall
//!   masks ([`StallControl`]), used by `lis-verify` to close a wrapper
//!   configuration and drive every stall schedule exhaustively.
//!
//! All components plug into the two-phase simulator of [`lis_sim`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapter;
mod adversary;
mod channel;
mod endpoints;
mod fifo;
mod packed;
mod pearl;
mod relay;
mod token;

pub use adapter::{Deserializer, Serializer};
pub use adversary::{PackedSeqSink, PackedSeqSource, SeqSink, SeqSource, StallControl};
pub use channel::LisChannel;
pub use endpoints::{StallPattern, TokenSink, TokenSource};
pub use fifo::{InputPort, InputPortFace, OutputPort, OutputPortFace, PORT_QUEUE_CAPACITY};
pub use packed::{
    LaneDemux, LaneMux, PackedLisChannel, PackedRelayStation, PackedTokenSink, PackedTokenSource,
    PackedWire,
};
pub use pearl::{AccumulatorPearl, Pearl, PortValues};
pub use relay::{PlainRegisterStage, RelayStation, ViolationCounter};
pub use token::{informative, latency_equivalent, Token};

//! Pearls: suspendable synchronous IPs, ready for encapsulation.
//!
//! In the LIS methodology an IP becomes a *patient process* by
//! encapsulation: the shell gates the pearl's clock so the pearl only
//! ever observes cycles where its scheduled I/O is possible. A [`Pearl`]
//! therefore exposes exactly three things: its port [`Interface`], its
//! cyclic [`IoSchedule`], and a [`Pearl::clock`] method executed once per
//! *enabled* cycle.

use lis_schedule::{Interface, IoSchedule};
use std::fmt;

/// Token values crossing a pearl's boundary in one enabled cycle.
///
/// Indexed by *directional* port index (input ports and output ports
/// count separately, matching the schedule's masks). `None` marks ports
/// without traffic this cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortValues {
    values: Vec<Option<u64>>,
}

impl PortValues {
    /// Creates a frame for `n` ports, all absent.
    pub fn empty(n: usize) -> Self {
        PortValues {
            values: vec![None; n],
        }
    }

    /// Creates a frame from explicit per-port values.
    pub fn from_values(values: Vec<Option<u64>>) -> Self {
        PortValues { values }
    }

    /// Number of ports in the frame.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the frame covers zero ports.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The value on port `port`, if any.
    pub fn get(&self, port: usize) -> Option<u64> {
        self.values.get(port).copied().flatten()
    }

    /// Sets the value on port `port`.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn set(&mut self, port: usize, value: u64) {
        self.values[port] = Some(value);
    }

    /// Ports carrying a value this cycle.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (i, v)))
    }
}

impl fmt::Display for PortValues {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                Some(v) => write!(f, "{v}")?,
                None => write!(f, "·")?,
            }
        }
        write!(f, "]")
    }
}

/// A suspendable synchronous IP.
///
/// The shell calls [`Pearl::clock`] exactly once per enabled cycle, in
/// schedule order: on enabled cycle `t`, `inputs` carries a value for
/// every port in `schedule().at(t).reads`, and the returned frame must
/// carry a value for every port in `schedule().at(t).writes` (and no
/// others). [`Pearl::reset`] rewinds to enabled cycle 0.
pub trait Pearl: Send {
    /// Instance name.
    fn name(&self) -> &str;

    /// The LIS-visible port interface.
    fn interface(&self) -> &Interface;

    /// The cyclic I/O schedule the wrapper enforces.
    fn schedule(&self) -> &IoSchedule;

    /// Executes one enabled cycle.
    fn clock(&mut self, inputs: &PortValues) -> PortValues;

    /// Returns to the power-up state (enabled cycle 0).
    fn reset(&mut self);

    /// Appends the pearl's architectural state as plain words, for
    /// checkpointing. Stateless pearls keep the empty default; stateful
    /// ones must override both this and [`Pearl::load_state`] so a
    /// restored run continues bit-identically.
    fn save_state(&self, out: &mut Vec<u64>) {
        let _ = out;
    }

    /// Restores state captured by [`Pearl::save_state`].
    fn load_state(&mut self, data: &[u64]) {
        let _ = data;
    }
}

/// A trivial pearl for tests and examples: reads one word per period on
/// every input port, computes for `latency` cycles, then writes the sum
/// of the inputs (plus an accumulator) on every output port.
#[derive(Debug)]
pub struct AccumulatorPearl {
    name: String,
    interface: Interface,
    schedule: IoSchedule,
    step: usize,
    held: Vec<u64>,
    acc: u64,
}

impl AccumulatorPearl {
    /// Creates a pearl with `n_in` inputs, `n_out` outputs and a compute
    /// latency of `latency` cycles per period.
    ///
    /// # Panics
    ///
    /// Panics if `n_in == 0` or `n_out == 0`.
    pub fn new(name: impl Into<String>, n_in: usize, n_out: usize, latency: usize) -> Self {
        use lis_schedule::{PortSpec, ScheduleBuilder};
        assert!(n_in > 0 && n_out > 0, "accumulator needs ports");
        let mut ports = Vec::new();
        for i in 0..n_in {
            ports.push(PortSpec::input(format!("in{i}"), 32));
        }
        for i in 0..n_out {
            ports.push(PortSpec::output(format!("out{i}"), 32));
        }
        let schedule = ScheduleBuilder::new(n_in, n_out)
            .io(0..n_in, [])
            .quiet(latency)
            .io([], 0..n_out)
            .build()
            .expect("accumulator schedule is valid");
        AccumulatorPearl {
            name: name.into(),
            interface: Interface::new(ports),
            schedule,
            step: 0,
            held: vec![0; n_in],
            acc: 0,
        }
    }
}

impl Pearl for AccumulatorPearl {
    fn name(&self) -> &str {
        &self.name
    }

    fn interface(&self) -> &Interface {
        &self.interface
    }

    fn schedule(&self) -> &IoSchedule {
        &self.schedule
    }

    fn clock(&mut self, inputs: &PortValues) -> PortValues {
        let io = self.schedule.at(self.step);
        let n_out = self.schedule.n_outputs();
        let mut out = PortValues::empty(n_out);
        for port in io.reads.iter() {
            self.held[port] = inputs
                .get(port)
                .expect("shell guarantees scheduled inputs are present");
        }
        if !io.writes.is_empty() {
            self.acc = self
                .acc
                .wrapping_add(self.held.iter().copied().fold(0u64, u64::wrapping_add));
            for port in io.writes.iter() {
                out.set(port, self.acc);
            }
        }
        self.step = (self.step + 1) % self.schedule.period();
        out
    }

    fn reset(&mut self) {
        self.step = 0;
        self.held.iter_mut().for_each(|h| *h = 0);
        self.acc = 0;
    }

    fn save_state(&self, out: &mut Vec<u64>) {
        out.push(self.step as u64);
        out.push(self.acc);
        out.push(self.held.len() as u64);
        out.extend(self.held.iter().copied());
    }

    fn load_state(&mut self, data: &[u64]) {
        self.step = data[0] as usize;
        self.acc = data[1];
        let n = data[2] as usize;
        self.held = data[3..3 + n].to_vec();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_values_access() {
        let mut pv = PortValues::empty(3);
        assert_eq!(pv.len(), 3);
        assert!(!pv.is_empty());
        assert_eq!(pv.get(1), None);
        pv.set(1, 42);
        assert_eq!(pv.get(1), Some(42));
        assert_eq!(pv.occupied().collect::<Vec<_>>(), vec![(1, 42)]);
        assert_eq!(pv.to_string(), "[·, 42, ·]");
        assert_eq!(pv.get(17), None, "out of range reads are None");
    }

    #[test]
    fn accumulator_pearl_follows_its_schedule() {
        let mut p = AccumulatorPearl::new("acc", 2, 1, 3);
        assert_eq!(p.schedule().period(), 5);
        assert_eq!(p.schedule().sync_points(), 2);
        assert_eq!(p.interface().input_count(), 2);

        // Enabled cycle 0: reads both ports.
        let mut ins = PortValues::empty(2);
        ins.set(0, 10);
        ins.set(1, 5);
        let out = p.clock(&ins);
        assert_eq!(out.occupied().count(), 0);
        // Quiet cycles.
        for _ in 0..3 {
            let out = p.clock(&PortValues::empty(2));
            assert_eq!(out.occupied().count(), 0);
        }
        // Write cycle: emits accumulated sum.
        let out = p.clock(&PortValues::empty(2));
        assert_eq!(out.get(0), Some(15));

        // Second period accumulates again.
        let mut ins = PortValues::empty(2);
        ins.set(0, 1);
        ins.set(1, 2);
        p.clock(&ins);
        for _ in 0..3 {
            p.clock(&PortValues::empty(2));
        }
        let out = p.clock(&PortValues::empty(2));
        assert_eq!(out.get(0), Some(18));
    }

    #[test]
    fn reset_rewinds_to_cycle_zero() {
        let mut p = AccumulatorPearl::new("acc", 1, 1, 0);
        let mut ins = PortValues::empty(1);
        ins.set(0, 7);
        p.clock(&ins);
        p.reset();
        let mut ins = PortValues::empty(1);
        ins.set(0, 3);
        p.clock(&ins);
        let out = p.clock(&PortValues::empty(1));
        assert_eq!(out.get(0), Some(3), "accumulator cleared by reset");
    }
}

//! Width-conversion adapters: serializers and deserializers between
//! channels of different widths.
//!
//! SoCs mix IPs with different port widths (the Viterbi pearl emits
//! 64-bit words; a downstream byte-stream consumer wants 8-bit tokens).
//! These adapters speak the LIS protocol on both sides — fully
//! latency-insensitive, never dropping a token.

use crate::channel::LisChannel;
use crate::token::Token;
use lis_sim::{Activity, Component, Ports, SignalView};

/// Splits each wide token into `factor` narrow tokens, least-significant
/// chunk first.
///
/// `narrow.width × factor` must cover `wide.width`.
#[derive(Debug)]
pub struct Serializer {
    name: String,
    wide: LisChannel,
    narrow: LisChannel,
    factor: u32,
    /// Remaining chunks of the word in flight (LSB-first).
    pending: Vec<u64>,
    stop_up: bool,
}

impl Serializer {
    /// Creates a serializer from `wide` onto `narrow`.
    ///
    /// # Panics
    ///
    /// Panics if the narrow width does not divide into the wide width in
    /// a whole number of chunks.
    pub fn new(name: impl Into<String>, wide: LisChannel, narrow: LisChannel) -> Self {
        let factor = wide.width.div_ceil(narrow.width);
        assert!(factor >= 1, "serializer needs at least one chunk");
        Serializer {
            name: name.into(),
            wide,
            narrow,
            factor,
            pending: Vec::new(),
            stop_up: false,
        }
    }

    /// Number of narrow tokens produced per wide token.
    pub fn factor(&self) -> u32 {
        self.factor
    }
}

impl Component for Serializer {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.narrow
            .producer_ports()
            .merge(self.wide.consumer_ports())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let out = self
            .pending
            .last()
            .map_or(Token::Void, |&chunk| Token::Data(chunk));
        self.narrow.write_token(sigs, out);
        self.wide.write_stop(sigs, self.stop_up);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let mut changed = false;
        // Downstream consumes the current chunk unless it stalls.
        if !self.narrow.read_stop(sigs) && !self.pending.is_empty() {
            self.pending.pop();
            changed = true;
        }
        // Accept a new word only while idle (we presented stop while
        // busy, so the producer held).
        if !self.stop_up {
            if let Token::Data(word) = self.wide.read_token(sigs) {
                changed = true;
                let mask = if self.narrow.width >= 64 {
                    u64::MAX
                } else {
                    (1u64 << self.narrow.width) - 1
                };
                // Stored MSB-chunk-first so pop() yields LSB-first.
                for i in (0..self.factor).rev() {
                    self.pending.push((word >> (i * self.narrow.width)) & mask);
                }
            }
        }
        let stop = !self.pending.is_empty();
        changed |= stop != self.stop_up;
        self.stop_up = stop;
        Activity::from_changed(changed)
    }
}

/// Packs every `factor` narrow tokens into one wide token,
/// least-significant chunk first (the inverse of [`Serializer`]).
#[derive(Debug)]
pub struct Deserializer {
    name: String,
    narrow: LisChannel,
    wide: LisChannel,
    factor: u32,
    collected: Vec<u64>,
    ready: Option<u64>,
    stop_up: bool,
}

impl Deserializer {
    /// Creates a deserializer from `narrow` onto `wide`.
    pub fn new(name: impl Into<String>, narrow: LisChannel, wide: LisChannel) -> Self {
        let factor = wide.width.div_ceil(narrow.width);
        assert!(factor >= 1, "deserializer needs at least one chunk");
        Deserializer {
            name: name.into(),
            narrow,
            wide,
            factor,
            collected: Vec::new(),
            ready: None,
            stop_up: false,
        }
    }

    /// Number of narrow tokens consumed per wide token.
    pub fn factor(&self) -> u32 {
        self.factor
    }
}

impl Component for Deserializer {
    fn name(&self) -> &str {
        &self.name
    }

    fn ports(&self) -> Ports {
        self.wide
            .producer_ports()
            .merge(self.narrow.consumer_ports())
    }

    fn eval(&mut self, sigs: &mut SignalView<'_>) {
        let out = self.ready.map_or(Token::Void, Token::Data);
        self.wide.write_token(sigs, out);
        self.narrow.write_stop(sigs, self.stop_up);
    }

    fn tick(&mut self, sigs: &SignalView<'_>) -> Activity {
        let mut changed = false;
        // 1. The consumer takes the assembled word unless it stalls.
        if !self.wide.read_stop(sigs) && self.ready.is_some() {
            self.ready = None;
            changed = true;
        }
        // 2. Intake (gated by the stop we presented this cycle).
        if !self.stop_up {
            if let Token::Data(chunk) = self.narrow.read_token(sigs) {
                self.collected.push(chunk);
                changed = true;
            }
        }
        // 3. Pack whenever a full word is collected and the output slot
        //    is free (also fires when the slot just drained above).
        if self.ready.is_none() && self.collected.len() == self.factor as usize {
            let mut word = 0u64;
            for (i, &c) in self.collected.iter().enumerate() {
                word |= c << (i as u32 * self.narrow.width);
            }
            self.ready = Some(word);
            self.collected.clear();
            changed = true;
        }
        // 4. Hold the producer while the next chunk could overflow the
        //    assembly buffer (full, or one short of full with the output
        //    slot still occupied).
        let stop = self.collected.len() >= self.factor as usize
            || (self.ready.is_some() && self.collected.len() + 1 >= self.factor as usize);
        changed |= stop != self.stop_up;
        self.stop_up = stop;
        Activity::from_changed(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoints::{TokenSink, TokenSource};
    use lis_sim::System;

    #[test]
    fn serializer_splits_words_lsb_first() {
        let mut sys = System::new();
        let wide = LisChannel::new(&mut sys, "w", 16);
        let narrow = LisChannel::new(&mut sys, "n", 8);
        sys.add_component(TokenSource::new("src", wide, vec![0xBEEF, 0x1234]));
        sys.add_component(Serializer::new("ser", wide, narrow));
        let sink = TokenSink::new("sink", narrow);
        let got = sink.received();
        sys.add_component(sink);
        sys.run(20).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![0xEF, 0xBE, 0x34, 0x12]);
    }

    #[test]
    fn deserializer_packs_chunks_lsb_first() {
        let mut sys = System::new();
        let narrow = LisChannel::new(&mut sys, "n", 8);
        let wide = LisChannel::new(&mut sys, "w", 16);
        sys.add_component(TokenSource::new(
            "src",
            narrow,
            vec![0xEF, 0xBE, 0x34, 0x12],
        ));
        sys.add_component(Deserializer::new("des", narrow, wide));
        let sink = TokenSink::new("sink", wide);
        let got = sink.received();
        sys.add_component(sink);
        sys.run(30).unwrap();
        assert_eq!(*got.lock().unwrap(), vec![0xBEEF, 0x1234]);
    }

    #[test]
    fn serializer_deserializer_round_trip_under_stalls() {
        let mut sys = System::new();
        let wide_in = LisChannel::new(&mut sys, "wi", 32);
        let narrow = LisChannel::new(&mut sys, "n", 8);
        let wide_out = LisChannel::new(&mut sys, "wo", 32);
        let words: Vec<u64> = (0..20)
            .map(|i| 0x0101_0101u64.wrapping_mul(i) & 0xFFFF_FFFF)
            .collect();
        sys.add_component(TokenSource::new("src", wide_in, words.clone()).with_stalls(0.3, 41));
        sys.add_component(Serializer::new("ser", wide_in, narrow));
        sys.add_component(Deserializer::new("des", narrow, wide_out));
        let sink = TokenSink::new("sink", wide_out).with_stalls(0.3, 42);
        let got = sink.received();
        sys.add_component(sink);
        sys.run(800).unwrap();
        assert_eq!(*got.lock().unwrap(), words);
    }

    #[test]
    fn factors_are_reported() {
        let mut sys = System::new();
        let wide = LisChannel::new(&mut sys, "w", 33);
        let narrow = LisChannel::new(&mut sys, "n", 8);
        let ser = Serializer::new("s", wide, narrow);
        assert_eq!(ser.factor(), 5, "33 bits need 5 byte chunks");
        let des = Deserializer::new("d", narrow, wide);
        assert_eq!(des.factor(), 5);
    }
}

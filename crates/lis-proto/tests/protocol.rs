//! Protocol property tests: relay-station chains of any length, under
//! any stall pattern on both ends, never lose, duplicate or reorder a
//! token — the invariant the whole LIS methodology rests on.

use lis_proto::{LisChannel, RelayStation, TokenSink, TokenSource, ViolationCounter};
use lis_sim::System;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn relay_chains_preserve_streams(
        chain_len in 0usize..10,
        src_stall in 0.0f64..0.7,
        sink_stall in 0.0f64..0.7,
        seed in any::<u64>(),
        n_tokens in 1u64..60,
    ) {
        let mut sys = System::new();
        let violations = ViolationCounter::new();
        let head = LisChannel::new(&mut sys, "head", 32);
        sys.add_component(
            TokenSource::new("src", head, 1..=n_tokens).with_stalls(src_stall, seed),
        );
        let tail = RelayStation::chain(&mut sys, "chain", head, chain_len, &violations);
        let sink = TokenSink::new("sink", tail).with_stalls(sink_stall, seed ^ 0x5A5A);
        let got = sink.received();
        sys.add_component(sink);

        // Generous budget: worst case ~(1/(1-p))² slowdown plus latency.
        sys.run(40 * n_tokens + 20 * chain_len as u64 + 200).unwrap();

        prop_assert_eq!(violations.count(), 0, "no token may ever be dropped");
        let received = got.lock().unwrap().clone();
        prop_assert_eq!(
            received,
            (1..=n_tokens).collect::<Vec<u64>>(),
            "stream must arrive complete, in order, exactly once"
        );
    }

    /// Two chains with different lengths deliver latency-equivalent
    /// streams (the formal LIS property, directly).
    #[test]
    fn different_latencies_are_latency_equivalent(
        len_a in 0usize..6,
        len_b in 0usize..6,
        stall in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let run = |chain_len: usize| {
            let mut sys = System::new();
            let violations = ViolationCounter::new();
            let head = LisChannel::new(&mut sys, "h", 16);
            sys.add_component(
                TokenSource::new("src", head, 10..=40).with_stalls(stall, seed),
            );
            let tail = RelayStation::chain(&mut sys, "c", head, chain_len, &violations);
            let sink = TokenSink::new("k", tail);
            let got = sink.received();
            sys.add_component(sink);
            sys.run(2000).unwrap();
            let result = got.lock().unwrap().clone();
            (result, violations.count())
        };
        let (a, va) = run(len_a);
        let (b, vb) = run(len_b);
        prop_assert_eq!(va + vb, 0);
        prop_assert_eq!(a, b);
    }
}

//! # latency-insensitive — umbrella crate
//!
//! A reproduction of Pierre Bomel, Eric Martin & Emmanuel Boutillon,
//! *"Synchronization Processor Synthesis for Latency Insensitive
//! Systems"* (DATE 2005), as a production-quality Rust workspace.
//!
//! This facade re-exports every subsystem:
//!
//! * [`netlist`] — gate-level IR and builders;
//! * [`sim`] — two-phase synchronous simulation (components + netlists);
//! * [`schedule`] — I/O schedules, SP operation programs, compression;
//! * [`proto`] — LIS tokens, channels, relay stations, FIFO ports, pearls;
//! * [`synth`] — LUT mapping, slice packing, static timing (the FPGA
//!   cost model standing in for the paper's vendor flow);
//! * [`wrappers`] — the four synchronization-wrapper generators,
//!   behavioural and gate-level;
//! * [`ip`] — Viterbi and Reed-Solomon decoder cores with the paper's
//!   Table 1 scenarios;
//! * [`hdl`] — Verilog/VHDL emission with round-trip parsing;
//! * [`core`] — SoC assembly, synthesis flow, experiment drivers;
//! * [`topo`] — NoC-scale topology generation (mesh/ring/star/chain),
//!   latency-budget relay insertion, traffic patterns, the dataflow
//!   oracle, and the E6 ablation bench.
//!
//! See `ARCHITECTURE.md` at the repository root for the crate
//! dependency graph and the main data-flow pipelines.
//!
//! # Quickstart
//!
//! ```
//! use latency_insensitive::core::SocBuilder;
//! use latency_insensitive::proto::AccumulatorPearl;
//! use latency_insensitive::wrappers::WrapperKind;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = SocBuilder::new();
//! let ip = b.add_ip(
//!     "acc",
//!     Box::new(AccumulatorPearl::new("acc", 1, 1, 2)),
//!     WrapperKind::Sp,
//! );
//! b.feed("src", ip.inputs[0], 1..=4, 0.0, 7);
//! b.capture("out", ip.outputs[0], 0.0, 8);
//! let mut soc = b.build();
//! soc.run(50)?;
//! assert_eq!(soc.received("out"), vec![1, 3, 6, 10]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lis_core as core;
pub use lis_hdl as hdl;
pub use lis_ip as ip;
pub use lis_netlist as netlist;
pub use lis_proto as proto;
pub use lis_schedule as schedule;
pub use lis_sim as sim;
pub use lis_synth as synth;
pub use lis_topo as topo;
pub use lis_wrappers as wrappers;

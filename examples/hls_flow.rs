//! The GAUT-like path end to end: describe an IP's behaviour as a
//! dataflow program, lower it to an I/O schedule, analyze its burst
//! buffer requirements, build a working pearl from a compute function,
//! and run it behind the synchronization processor — the complete
//! "HLS → schedule → wrapper synthesis" story of the paper's §4.
//!
//! Run with: `cargo run --release --example hls_flow`

use latency_insensitive::core::{synthesize_wrapper, SocBuilder, SpCompression};
use latency_insensitive::ip::{DataflowPearl, MatMulPearl};
use latency_insensitive::proto::Pearl;
use latency_insensitive::schedule::dataflow::{DataflowOp, DataflowProgram};
use latency_insensitive::schedule::{
    burst_buffer_requirements, compress, compress_bursty, PortSpec,
};
use latency_insensitive::synth::TechParams;
use latency_insensitive::wrappers::WrapperKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Behavioural description: an 8-point moving-average block.
    //    Read 8 samples, compute 4 cycles, emit 1 average.
    let program = DataflowProgram::new(
        1,
        1,
        vec![
            DataflowOp::repeat(8, vec![DataflowOp::read(0)]),
            DataflowOp::compute(4),
            DataflowOp::write(0),
        ],
    );
    let schedule = program.lower()?;
    println!("schedule: {schedule}");
    println!(
        "programs: safe = {} ops, burst = {} ops",
        compress(&schedule).len(),
        compress_bursty(&schedule).len()
    );

    // 2. Interface contract for burst mode.
    let req = burst_buffer_requirements(&schedule);
    println!("{req}");
    println!(
        "burst mode with 2-deep ports: {}",
        if req.safe_with(2) {
            "safe"
        } else {
            "UNSAFE — needs regular streams or deeper FIFOs (use safe mode)"
        }
    );

    // 3. A working pearl from the description plus a compute function.
    let pearl = DataflowPearl::new(
        "avg8",
        vec![PortSpec::input("x", 32), PortSpec::output("y", 32)],
        &program,
        |collected| {
            let xs = &collected[0];
            let avg = xs.iter().sum::<u64>() / xs.len() as u64;
            vec![vec![avg]]
        },
    )?;

    // 4. Encapsulate (safe mode, per the analysis) and run.
    let mut b = SocBuilder::new();
    let ip = b.add_ip("avg8", Box::new(pearl), WrapperKind::Sp);
    b.feed("samples", ip.inputs[0], (1..=64).map(|v| v * 10), 0.2, 5);
    b.capture("avgs", ip.outputs[0], 0.0, 6);
    let mut soc = b.build();
    soc.run_until_quiescent(10_000, 50)?;
    println!("averages: {:?}", soc.received("avgs"));
    assert_eq!(soc.received("avgs").len(), 8);
    assert_eq!(soc.violations(), 0);

    // 5. Cost of the wrapper for this scenario.
    let report = synthesize_wrapper(
        WrapperKind::Sp,
        &schedule,
        SpCompression::Safe,
        &TechParams::default(),
    )?;
    println!("wrapper synthesis: {report}");

    // Bonus: the matrix-multiply kernel, same flow, burstier schedule.
    let mm = MatMulPearl::new("mm");
    let req = burst_buffer_requirements(mm.schedule());
    println!("\nmatmul schedule: {} | {req}", mm.schedule());
    Ok(())
}

//! The paper's second workload: a streaming Reed-Solomon RS(255,239)
//! decoder pearl — the schedule with 2958 synchronization points that
//! makes FSM wrappers explode — repairing symbol errors in a continuous
//! stream while encapsulated behind the SP wrapper.
//!
//! Run with: `cargo run --release --example rs_pipeline`

use latency_insensitive::core::SocBuilder;
use latency_insensitive::ip::{ReedSolomon, RsPearl, K, N, T};
use latency_insensitive::wrappers::WrapperKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rs = ReedSolomon::new();
    let mut rng = StdRng::seed_from_u64(239);
    let blocks = 4;

    // Encode random messages; corrupt up to T symbols per codeword.
    let mut clean_stream: Vec<u64> = Vec::new();
    let mut noisy_stream: Vec<u64> = Vec::new();
    for blk in 0..blocks {
        let msg: Vec<u8> = (0..K).map(|_| rng.random()).collect();
        let cw = rs.encode(&msg);
        let mut noisy = cw.clone();
        let n_err = rng.random_range(1..=T);
        for _ in 0..n_err {
            let pos = rng.random_range(0..N);
            noisy[pos] ^= rng.random_range(1..=255) as u8;
        }
        println!("block {blk}: injected {n_err} symbol errors");
        clean_stream.extend(cw.iter().map(|&s| u64::from(s)));
        noisy_stream.extend(noisy.iter().map(|&s| u64::from(s)));
    }
    // One flush block: the streaming decoder emits block b while block
    // b+1 arrives.
    noisy_stream.extend(std::iter::repeat_n(0u64, N));

    // SoC: symbol + marker sources -> SP-wrapped RS decoder -> sinks.
    let mut b = SocBuilder::new();
    let ip = b.add_ip("rs", Box::new(RsPearl::new("rs")), WrapperKind::Sp);
    b.feed("syms", ip.inputs[0], noisy_stream, 0.1, 11);
    b.feed("markers", ip.inputs[1], 0..1000, 0.0, 12);
    b.capture("corrected", ip.outputs[0], 0.0, 13);
    b.capture("status", ip.outputs[1], 0.0, 14);
    let mut soc = b.build();

    let want = (N - 1) + blocks * N; // pipeline fill + all blocks
    let done = soc.run_until(200_000, |s| s.received("corrected").len() >= want)?;
    assert!(done, "SoC did not emit all corrected blocks in budget");
    println!(
        "\nSoC finished after {} cycles, violations: {}",
        soc.cycle(),
        soc.violations()
    );

    // Verify: after the 254-symbol pipeline fill, the corrected stream
    // equals the clean codeword stream.
    let got = soc.received("corrected");
    let fill = N - 1;
    for blk in 0..blocks {
        let chunk = &got[fill + blk * N..fill + (blk + 1) * N];
        assert_eq!(
            chunk,
            &clean_stream[blk * N..(blk + 1) * N],
            "block {blk} must be fully repaired"
        );
        println!("block {blk}: repaired to the exact transmitted codeword");
    }
    println!(
        "status words (corrected<<8 | failures): {:?}",
        soc.received("status")
    );
    Ok(())
}

//! Quickstart: encapsulate an IP behind the synchronization processor,
//! run it in a latency-insensitive system, then synthesize the wrapper
//! and look at the cost report.
//!
//! Run with: `cargo run --example quickstart`

use latency_insensitive::core::{synthesize_wrapper, SocBuilder, SpCompression};
use latency_insensitive::proto::{AccumulatorPearl, Pearl};
use latency_insensitive::schedule::compress;
use latency_insensitive::synth::TechParams;
use latency_insensitive::wrappers::WrapperKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A pearl: a suspendable IP with a cyclic I/O schedule.
    let pearl = AccumulatorPearl::new("acc", 2, 1, 4);
    println!("pearl schedule: {}", pearl.schedule());
    println!("SP program:\n{}", compress(pearl.schedule()));

    // 2. Drop it into a SoC behind an SP wrapper; feed two bursty
    //    streams; capture the output.
    let mut b = SocBuilder::new();
    let schedule = pearl.schedule().clone();
    let ip = b.add_ip("acc", Box::new(pearl), WrapperKind::Sp);
    b.feed("xs", ip.inputs[0], (1..=10).map(|v| v * 100), 0.3, 42);
    b.feed("ys", ip.inputs[1], 1..=10, 0.2, 43);
    b.capture("sums", ip.outputs[0], 0.1, 44);
    let mut soc = b.build();
    soc.run(500)?;
    println!("received: {:?}", soc.received("sums"));
    println!(
        "violations: {} | wrapper utilization: {:.1}%",
        soc.violations(),
        soc.utilization("acc").unwrap_or(0.0) * 100.0
    );

    // 3. Synthesize the same wrapper to slices + fmax.
    let report = synthesize_wrapper(
        WrapperKind::Sp,
        &schedule,
        SpCompression::Safe,
        &TechParams::default(),
    )?;
    println!("synthesis: {report}");
    Ok(())
}

//! Export the synchronization-processor wrapper of the paper's Viterbi
//! scenario as synthesizable Verilog and VHDL — the artifact a SoC team
//! would drop into their flow — and prove the Verilog round-trips.
//!
//! Run with: `cargo run --example hdl_export`
//! Files land in `target/hdl_export/`.

use latency_insensitive::hdl::{
    capture_golden, emit_testbench, emit_verilog, emit_vhdl, parse_verilog,
};
use latency_insensitive::ip::ViterbiPearl;
use latency_insensitive::netlist::NetlistStats;
use latency_insensitive::proto::Pearl;
use latency_insensitive::schedule::compress_bursty;
use latency_insensitive::wrappers::generate_sp;
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pearl = ViterbiPearl::new("viterbi");
    let program = compress_bursty(pearl.schedule());
    println!("SP program for the Viterbi scenario:\n{program}");

    let module = generate_sp(&program)?;
    println!("controller netlist: {}", NetlistStats::of(&module));

    let dir = Path::new("target/hdl_export");
    fs::create_dir_all(dir)?;

    let verilog = emit_verilog(&module);
    let vhdl = emit_vhdl(&module);
    fs::write(dir.join("sp_wrapper.v"), &verilog)?;
    fs::write(dir.join("sp_wrapper.vhd"), &vhdl)?;
    println!(
        "wrote {} ({} lines) and {} ({} lines)",
        dir.join("sp_wrapper.v").display(),
        verilog.lines().count(),
        dir.join("sp_wrapper.vhd").display(),
        vhdl.lines().count(),
    );

    // Round-trip sanity: the text denotes the synthesized netlist.
    let parsed = parse_verilog(&verilog)?;
    assert_eq!(NetlistStats::of(&parsed), NetlistStats::of(&module));
    println!("Verilog round-trip: OK (census identical)");

    // A self-checking testbench with golden outputs captured from the
    // reference interpreter: boot, then walk the first two operations.
    let stimuli: Vec<Vec<u64>> = (0..24)
        .map(|t| {
            let rst = u64::from(t == 0);
            let ne = 0b11u64; // both inputs always ready
            let nf = 0b111u64; // all outputs ready
            vec![rst, ne, nf]
        })
        .collect();
    let cycles = capture_golden(&module, &stimuli);
    let tb = emit_testbench(&module, &cycles);
    fs::write(dir.join("sp_wrapper_tb.v"), &tb)?;
    println!(
        "wrote {} ({} checked cycles) — run it with any Verilog simulator",
        dir.join("sp_wrapper_tb.v").display(),
        cycles.len()
    );
    Ok(())
}

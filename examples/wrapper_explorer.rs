//! Compare all four wrapper models — Carloni's combinational shell, the
//! Singh-Theobald FSM (both encodings), the Casu-Macchiarulo shift
//! register and the Bomel synchronization processor — on one schedule:
//! synthesis cost side by side, plus the SP's ROM program.
//!
//! Run with: `cargo run --release --example wrapper_explorer -- [period]`

use latency_insensitive::core::{synthesize_wrapper, SpCompression};
use latency_insensitive::schedule::{compress, compress_bursty, ScheduleBuilder};
use latency_insensitive::synth::TechParams;
use latency_insensitive::wrappers::{FsmEncoding, WrapperKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quiet: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);

    // A DSP-flavoured scenario: read coefficients, stream samples,
    // compute, write results.
    let schedule = ScheduleBuilder::new(2, 2)
        .read(0)
        .repeat_io([1], [], 16)
        .quiet(quiet)
        .repeat_io([], [0], 8)
        .io([], [1])
        .build()?;
    println!("schedule: {schedule}");
    println!(
        "safe program: {} ops | burst program: {} ops\n",
        compress(&schedule).len(),
        compress_bursty(&schedule).len()
    );

    let params = TechParams::default();
    println!(
        "{:14} {:>8} {:>8} {:>10} {:>10}",
        "model", "slices", "fmax", "ROM bits", "ops"
    );
    for (kind, compression) in [
        (WrapperKind::Comb, SpCompression::Safe),
        (WrapperKind::Fsm(FsmEncoding::OneHot), SpCompression::Safe),
        (WrapperKind::Fsm(FsmEncoding::Binary), SpCompression::Safe),
        (WrapperKind::ShiftReg, SpCompression::Safe),
        (WrapperKind::Sp, SpCompression::Safe),
        (WrapperKind::Sp, SpCompression::Burst),
    ] {
        let w = synthesize_wrapper(kind, &schedule, compression, &params)?;
        let label = match (kind, compression) {
            (WrapperKind::Sp, SpCompression::Burst) => "sp (burst)".to_owned(),
            _ => w.model.clone(),
        };
        println!(
            "{:14} {:>8} {:>8.1} {:>10} {:>10}",
            label,
            w.report.area.slices,
            w.report.timing.fmax_mhz,
            w.report.area.rom_bits_bram + w.report.area.rom_bits_lutram,
            w.sp_ops.map_or("-".to_owned(), |n| n.to_string()),
        );
    }

    println!("\nburst SP program listing:");
    print!("{}", compress_bursty(&schedule));
    Ok(())
}

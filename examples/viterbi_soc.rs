//! The paper's first workload, end to end: a convolutionally encoded
//! bitstream crosses a noisy channel, enters a Viterbi-decoder pearl
//! encapsulated behind a *gate-level* synchronization-processor
//! controller, and comes out decoded — across relay-station latencies
//! and source stalls.
//!
//! Run with: `cargo run --release --example viterbi_soc`

use latency_insensitive::core::SocBuilder;
use latency_insensitive::ip::{ConvEncoder, ViterbiPearl, VITERBI_FRAME_BITS};
use latency_insensitive::wrappers::WrapperKind;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2005);
    let frames = 3;

    // Prepare `frames` frames of random bits, encode, and flip one
    // channel bit per frame.
    let mut all_bits = Vec::new();
    let mut symbol_stream = Vec::new();
    for f in 0..frames {
        let bits: Vec<bool> = (0..VITERBI_FRAME_BITS).map(|_| rng.random()).collect();
        let mut coded = ConvEncoder::encode_block(&bits);
        let hit = rng.random_range(0..coded.len());
        coded[hit].0 = !coded[hit].0;
        for (a, b) in coded {
            symbol_stream.push(u64::from(a) | (u64::from(b) << 1));
        }
        all_bits.push(bits);
        println!("frame {f}: injected a channel error at symbol {hit}");
    }

    // Build the SoC: ctrl and symbol sources -> relayed links ->
    // hardware-controlled Viterbi patient process -> sinks.
    let mut b = SocBuilder::new();
    let ip = b.add_ip_netlist("viterbi", Box::new(ViterbiPearl::new("v")), WrapperKind::Sp);
    let ctrl_stage = b.channel("ctrl_stage", 8);
    let sym_stage = b.channel("sym_stage", 2);
    b.feed(
        "ctrl",
        ctrl_stage,
        (0..frames as u64).map(|f| 0x10 + f),
        0.0,
        1,
    );
    b.feed("syms", sym_stage, symbol_stream, 0.25, 2);
    b.link(ctrl_stage, ip.inputs[0], 2);
    b.link(sym_stage, ip.inputs[1], 4);
    b.capture("data", ip.outputs[0], 0.0, 3);
    b.capture("status", ip.outputs[1], 0.0, 4);
    b.capture("err", ip.outputs[2], 0.0, 5);
    let mut soc = b.build();

    let done = soc.run_until(200_000, |s| s.received("err").len() >= frames)?;
    assert!(done, "SoC did not finish in the cycle budget");
    println!("\nSoC finished after {} cycles", soc.cycle());
    println!("violations: {}", soc.violations());

    // Check every decoded frame.
    let data = soc.received("data");
    for (f, bits) in all_bits.iter().enumerate() {
        let words = [data[f * 2], data[f * 2 + 1]];
        let decoded: Vec<bool> = (0..VITERBI_FRAME_BITS)
            .map(|i| (words[i / 64] >> (i % 64)) & 1 == 1)
            .collect();
        assert_eq!(&decoded, bits, "frame {f} must decode exactly");
        println!("frame {f}: decoded correctly ({} bits)", bits.len());
    }
    println!(
        "path metrics (1 = the injected error): {:?}",
        soc.received("err")
    );
    Ok(())
}

//! The LIS correctness property, tested as a property: for any channel
//! latencies and any stall pattern, a patient process produces the same
//! informative stream — and FSM- and SP-wrapped systems produce the same
//! stream as each other.

use latency_insensitive::core::SocBuilder;
use latency_insensitive::proto::AccumulatorPearl;
use latency_insensitive::wrappers::{FsmEncoding, WrapperKind};
use proptest::prelude::*;

/// Runs a relayed accumulator SoC and returns its informative output.
#[allow(clippy::too_many_arguments)] // a flat test-parameter list reads best here
fn run_soc(
    kind: WrapperKind,
    in_latency: usize,
    out_latency: usize,
    src_stall: f64,
    sink_stall: f64,
    seed: u64,
    tokens: u64,
    cycles: u64,
) -> (Vec<u64>, u64) {
    let mut b = SocBuilder::new();
    let ip = b.add_ip("acc", Box::new(AccumulatorPearl::new("acc", 1, 1, 1)), kind);
    let in_stage = b.channel("in_stage", 32);
    b.feed("src", in_stage, 1..=tokens, src_stall, seed);
    b.link(in_stage, ip.inputs[0], in_latency);
    let out_stage = b.channel("out_stage", 32);
    b.link(ip.outputs[0], out_stage, out_latency);
    b.capture("out", out_stage, sink_stall, seed ^ 0xFF);
    let mut soc = b.build();
    soc.run(cycles).expect("simulation");
    (soc.received("out"), soc.violations())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Changing latencies/stalls never changes the informative stream
    /// (only its timing) for the SP wrapper.
    #[test]
    fn sp_stream_is_latency_invariant(
        in_latency in 0usize..6,
        out_latency in 0usize..6,
        src_stall in 0.0f64..0.6,
        sink_stall in 0.0f64..0.6,
        seed in any::<u64>(),
    ) {
        let tokens = 30u64;
        let reference: Vec<u64> = (1..=tokens)
            .scan(0u64, |acc, v| { *acc += v; Some(*acc) })
            .collect();
        let (got, violations) = run_soc(
            WrapperKind::Sp, in_latency, out_latency, src_stall, sink_stall,
            seed, tokens, 3000,
        );
        prop_assert_eq!(violations, 0);
        // Prefix property: everything delivered so far is correct.
        prop_assert!(got.len() <= reference.len());
        prop_assert_eq!(&got[..], &reference[..got.len()]);
        // With 3000 cycles for 30 tokens, everything must have landed.
        prop_assert_eq!(got.len(), reference.len());
    }

    /// FSM- and SP-wrapped systems are latency-equivalent to each other
    /// under identical traffic.
    #[test]
    fn fsm_and_sp_systems_agree(
        in_latency in 0usize..4,
        src_stall in 0.0f64..0.5,
        seed in any::<u64>(),
    ) {
        let (sp, v1) = run_soc(
            WrapperKind::Sp, in_latency, 0, src_stall, 0.0, seed, 25, 2500,
        );
        let (fsm, v2) = run_soc(
            WrapperKind::Fsm(FsmEncoding::OneHot), in_latency, 0, src_stall, 0.0, seed, 25, 2500,
        );
        prop_assert_eq!(v1 + v2, 0);
        prop_assert_eq!(sp, fsm);
    }
}

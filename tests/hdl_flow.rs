//! The complete codegen flow, end to end: pearl schedule → SP program →
//! gate-level controller → Verilog text → parsed back → interpreted —
//! and the interpreted hardware must drive a SoC identically to the
//! behavioural wrapper.

use latency_insensitive::hdl::{emit_verilog, emit_vhdl, parse_verilog};
use latency_insensitive::ip::{RsPearl, ViterbiPearl};
use latency_insensitive::netlist::NetlistStats;
use latency_insensitive::proto::Pearl;
use latency_insensitive::schedule::{compress, compress_bursty};
use latency_insensitive::sim::NetlistSim;
use latency_insensitive::synth::{optimize, synthesize, TechParams};
use latency_insensitive::wrappers::generate_sp;

#[test]
fn viterbi_sp_controller_full_flow() {
    let pearl = ViterbiPearl::new("v");
    let program = compress_bursty(pearl.schedule());
    assert_eq!(program.len(), 4);

    let module = generate_sp(&program).expect("generate");
    // Verilog round-trip.
    let text = emit_verilog(&module);
    let parsed = parse_verilog(&text).expect("parse");
    assert_eq!(NetlistStats::of(&parsed), NetlistStats::of(&module));
    // VHDL well-formedness.
    let vhdl = emit_vhdl(&module);
    assert!(vhdl.contains("entity sp_wrapper is"));

    // The parsed module simulates identically to the generated one.
    let mut a = NetlistSim::new(module.clone()).unwrap();
    let mut b = NetlistSim::new(parsed).unwrap();
    for cycle in 0..600u64 {
        let ne = cycle % 3;
        let nf = (cycle / 2) % 8;
        for sim in [&mut a, &mut b] {
            sim.set_input("rst", u64::from(cycle == 100)).unwrap();
            sim.set_input("ne", ne).unwrap();
            sim.set_input("nf", nf).unwrap();
            sim.eval();
        }
        assert_eq!(
            a.get_output("enable").unwrap(),
            b.get_output("enable").unwrap(),
            "cycle {cycle}"
        );
        assert_eq!(
            a.get_output("pop").unwrap(),
            b.get_output("pop").unwrap(),
            "cycle {cycle}"
        );
        assert_eq!(
            a.get_output("push").unwrap(),
            b.get_output("push").unwrap(),
            "cycle {cycle}"
        );
        a.step();
        b.step();
    }

    // The optimized module is also equivalent (spot check via synthesis
    // succeeding and stats being no larger).
    let opt = optimize(&module).expect("optimize");
    assert!(opt.cell_count() <= module.cell_count());
    let report = synthesize(&module, &TechParams::default()).expect("synthesize");
    assert!(report.area.slices > 0);
    assert!(report.timing.fmax_mhz > 50.0);
}

#[test]
fn rs_sp_controller_flow_is_rom_dominated() {
    let pearl = RsPearl::new("rs");
    let program = compress(pearl.schedule());
    let module = generate_sp(&program).expect("generate");
    let report = synthesize(&module, &TechParams::default()).expect("synthesize");

    // The whole 2958-op schedule lives in memory bits, not slices.
    assert!(report.area.rom_bits_bram > 10_000);
    assert!(
        report.area.slices < 60,
        "SP logic must stay tiny: {}",
        report.area
    );

    // The Verilog for a 2958-word ROM still round-trips.
    let text = emit_verilog(&module);
    let parsed = parse_verilog(&text).expect("parse");
    assert_eq!(NetlistStats::of(&parsed), NetlistStats::of(&module));
}

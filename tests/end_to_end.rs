//! Cross-crate integration tests: full SoCs built from real IP cores,
//! wrapped by generated controllers, communicating over relayed LIS
//! channels under irregular traffic.

use latency_insensitive::core::SocBuilder;
use latency_insensitive::ip::{
    ConvEncoder, ReedSolomon, RsPearl, ViterbiPearl, K, N, VITERBI_FRAME_BITS,
};
use latency_insensitive::wrappers::{FsmEncoding, WrapperKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One Viterbi frame: encode, add an error, decode through the SoC.
fn viterbi_frame_through_soc(kind: WrapperKind, hardware: bool, relays: usize) {
    let mut rng = StdRng::seed_from_u64(77);
    let bits: Vec<bool> = (0..VITERBI_FRAME_BITS).map(|_| rng.random()).collect();
    let mut coded = ConvEncoder::encode_block(&bits);
    coded[33].1 = !coded[33].1;
    let symbols: Vec<u64> = coded
        .iter()
        .map(|&(a, b)| u64::from(a) | (u64::from(b) << 1))
        .collect();

    let mut b = SocBuilder::new();
    let pearl = Box::new(ViterbiPearl::new("v"));
    let ip = if hardware {
        b.add_ip_netlist("viterbi", pearl, kind)
    } else {
        b.add_ip("viterbi", pearl, kind)
    };
    let ctrl_stage = b.channel("cs", 8);
    let sym_stage = b.channel("ss", 2);
    b.feed("ctrl", ctrl_stage, vec![1], 0.0, 1);
    b.feed("syms", sym_stage, symbols, 0.2, 2);
    b.link(ctrl_stage, ip.inputs[0], relays);
    b.link(sym_stage, ip.inputs[1], relays);
    b.capture("data", ip.outputs[0], 0.0, 3);
    b.capture("err", ip.outputs[2], 0.0, 4);
    let mut soc = b.build();
    let done = soc
        .run_until(50_000, |s| !s.received("err").is_empty())
        .unwrap();
    assert!(done, "frame not decoded in budget");
    assert_eq!(soc.violations(), 0);

    let data = soc.received("data");
    let decoded: Vec<bool> = (0..VITERBI_FRAME_BITS)
        .map(|i| (data[i / 64] >> (i % 64)) & 1 == 1)
        .collect();
    assert_eq!(decoded, bits);
    assert_eq!(soc.received("err"), vec![1], "path metric counts the error");
}

#[test]
fn viterbi_behavioural_sp() {
    viterbi_frame_through_soc(WrapperKind::Sp, false, 0);
}

#[test]
fn viterbi_hardware_sp_with_relays() {
    viterbi_frame_through_soc(WrapperKind::Sp, true, 3);
}

#[test]
fn viterbi_behavioural_fsm_with_relays() {
    viterbi_frame_through_soc(WrapperKind::Fsm(FsmEncoding::OneHot), false, 2);
}

#[test]
fn viterbi_hardware_fsm() {
    viterbi_frame_through_soc(WrapperKind::Fsm(FsmEncoding::Binary), true, 1);
}

#[test]
fn rs_stream_corrected_through_soc() {
    let rs = ReedSolomon::new();
    let mut rng = StdRng::seed_from_u64(88);
    let blocks = 2;
    let mut clean = Vec::new();
    let mut noisy = Vec::new();
    for _ in 0..blocks {
        let msg: Vec<u8> = (0..K).map(|_| rng.random()).collect();
        let cw = rs.encode(&msg);
        let mut bad = cw.clone();
        for _ in 0..5 {
            let pos = rng.random_range(0..N);
            bad[pos] ^= rng.random_range(1..=255) as u8;
        }
        clean.extend(cw.iter().map(|&s| u64::from(s)));
        noisy.extend(bad.iter().map(|&s| u64::from(s)));
    }
    // The streaming decoder emits block b while block b+1 arrives; feed
    // one flush block so the last real block drains.
    noisy.extend(std::iter::repeat_n(0u64, N));

    let mut b = SocBuilder::new();
    let ip = b.add_ip("rs", Box::new(RsPearl::new("rs")), WrapperKind::Sp);
    b.feed("syms", ip.inputs[0], noisy, 0.15, 5);
    b.feed("markers", ip.inputs[1], 0..100, 0.0, 6);
    b.capture("out", ip.outputs[0], 0.1, 7);
    let mut soc = b.build();
    let want = (N - 1) + blocks * N;
    let done = soc
        .run_until(100_000, |s| s.received("out").len() >= want)
        .unwrap();
    assert!(done);
    assert_eq!(soc.violations(), 0);

    let got = soc.received("out");
    let fill = N - 1;
    for blk in 0..blocks {
        assert_eq!(
            &got[fill + blk * N..fill + (blk + 1) * N],
            &clean[blk * N..(blk + 1) * N],
            "block {blk}"
        );
    }
}

#[test]
fn two_ip_chain_viterbi_feeds_checksum() {
    // Viterbi output words stream into a second (accumulator) IP —
    // a two-patient-process system over relayed channels.
    use latency_insensitive::proto::AccumulatorPearl;

    let mut rng = StdRng::seed_from_u64(99);
    let bits: Vec<bool> = (0..VITERBI_FRAME_BITS).map(|_| rng.random()).collect();
    let coded = ConvEncoder::encode_block(&bits);
    let symbols: Vec<u64> = coded
        .iter()
        .map(|&(a, b)| u64::from(a) | (u64::from(b) << 1))
        .collect();

    let mut b = SocBuilder::new();
    let vit = b.add_ip("viterbi", Box::new(ViterbiPearl::new("v")), WrapperKind::Sp);
    let acc = b.add_ip(
        "checksum",
        Box::new(AccumulatorPearl::new("acc", 1, 1, 0)),
        WrapperKind::Fsm(FsmEncoding::OneHot),
    );
    b.feed("ctrl", vit.inputs[0], vec![7], 0.0, 1);
    b.feed("syms", vit.inputs[1], symbols, 0.1, 2);
    b.link(vit.outputs[0], acc.inputs[0], 2);
    b.capture("sum", acc.outputs[0], 0.0, 3);
    b.capture("status", vit.outputs[1], 0.0, 4);
    b.capture("err", vit.outputs[2], 0.0, 5);
    let mut soc = b.build();
    let done = soc
        .run_until(50_000, |s| s.received("sum").len() >= 2)
        .unwrap();
    assert!(done);
    assert_eq!(soc.violations(), 0);

    // The checksum IP received the two decoded data words, truncated to
    // its 32-bit ports by the narrower channel.
    let mut words = [0u64; 2];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            words[i / 64] |= 1 << (i % 64);
        }
    }
    let w0 = words[0] & 0xFFFF_FFFF;
    let w1 = words[1] & 0xFFFF_FFFF;
    let sums = soc.received("sum");
    assert_eq!(sums[0], w0);
    assert_eq!(sums[1], (w0 + w1) & 0xFFFF_FFFF);
}

#[test]
fn viterbi_full_gate_level_shell_with_relays() {
    // The complete shell — SP controller AND port FIFOs — interpreted
    // gate by gate, decoding a real frame across relayed channels.
    let mut rng = StdRng::seed_from_u64(123);
    let bits: Vec<bool> = (0..VITERBI_FRAME_BITS).map(|_| rng.random()).collect();
    let mut coded = ConvEncoder::encode_block(&bits);
    coded[50].0 = !coded[50].0;
    let symbols: Vec<u64> = coded
        .iter()
        .map(|&(a, b)| u64::from(a) | (u64::from(b) << 1))
        .collect();

    let mut b = SocBuilder::new();
    let ip = b.add_ip_full_netlist("viterbi", Box::new(ViterbiPearl::new("v")), WrapperKind::Sp);
    let ctrl_stage = b.channel("cs", 8);
    let sym_stage = b.channel("ss", 2);
    b.feed("ctrl", ctrl_stage, vec![9], 0.0, 1);
    b.feed("syms", sym_stage, symbols, 0.15, 2);
    b.link(ctrl_stage, ip.inputs[0], 2);
    b.link(sym_stage, ip.inputs[1], 3);
    b.capture("data", ip.outputs[0], 0.0, 3);
    b.capture("err", ip.outputs[2], 0.0, 4);
    let mut soc = b.build();
    let done = soc
        .run_until(80_000, |s| !s.received("err").is_empty())
        .unwrap();
    assert!(done);
    assert_eq!(soc.violations(), 0);
    let data = soc.received("data");
    let decoded: Vec<bool> = (0..VITERBI_FRAME_BITS)
        .map(|i| (data[i / 64] >> (i % 64)) & 1 == 1)
        .collect();
    assert_eq!(decoded, bits);
    assert_eq!(soc.received("err"), vec![1]);
}

#[test]
fn matmul_through_netlist_controlled_soc() {
    use latency_insensitive::ip::{MatMulPearl, MATMUL_DIM};

    let a: Vec<u64> = (1..=16).collect();
    let bm: Vec<u64> = (21..=36).collect();
    let mut reference = vec![0u64; 16];
    for i in 0..MATMUL_DIM {
        for j in 0..MATMUL_DIM {
            for k in 0..MATMUL_DIM {
                reference[i * 4 + j] =
                    reference[i * 4 + j].wrapping_add(a[i * 4 + k].wrapping_mul(bm[k * 4 + j]));
            }
        }
    }

    let mut b = SocBuilder::new();
    let ip = b.add_ip_netlist("mm", Box::new(MatMulPearl::new("mm")), WrapperKind::Sp);
    b.feed("a", ip.inputs[0], a, 0.2, 6);
    b.feed("b", ip.inputs[1], bm, 0.3, 7);
    b.capture("c", ip.outputs[0], 0.1, 8);
    let mut soc = b.build();
    let done = soc
        .run_until(20_000, |s| s.received("c").len() >= 16)
        .unwrap();
    assert!(done);
    assert_eq!(soc.violations(), 0);
    assert_eq!(soc.received("c"), reference);
}

#[test]
fn crc_frames_through_full_gate_level_shell() {
    use latency_insensitive::ip::{crc32, CrcPearl, CRC_FRAME_BYTES};

    let mut rng = StdRng::seed_from_u64(321);
    let data: Vec<u8> = (0..3 * CRC_FRAME_BYTES).map(|_| rng.random()).collect();

    let mut b = SocBuilder::new();
    let ip = b.add_ip_full_netlist("crc", Box::new(CrcPearl::new("crc")), WrapperKind::Sp);
    b.feed(
        "bytes",
        ip.inputs[0],
        data.iter().map(|&x| u64::from(x)),
        0.2,
        9,
    );
    b.capture("crcs", ip.outputs[0], 0.1, 10);
    let mut soc = b.build();
    let done = soc
        .run_until(30_000, |s| s.received("crcs").len() >= 3)
        .unwrap();
    assert!(done);
    assert_eq!(soc.violations(), 0);
    let got: Vec<u32> = soc.received("crcs").iter().map(|&v| v as u32).collect();
    let expect: Vec<u32> = data.chunks(CRC_FRAME_BYTES).map(crc32).collect();
    assert_eq!(got, expect);
}

#[test]
fn comb_wrapper_requires_traffic_on_all_ports() {
    // With the comb wrapper, the Viterbi pearl cannot make progress
    // because its ctrl port is idle for 201 of 202 cycles — exactly the
    // over-synchronization the paper's §2 criticizes. The SP sails
    // through the same traffic.
    let mut rng = StdRng::seed_from_u64(111);
    let bits: Vec<bool> = (0..VITERBI_FRAME_BITS).map(|_| rng.random()).collect();
    let coded = ConvEncoder::encode_block(&bits);
    let symbols: Vec<u64> = coded
        .iter()
        .map(|&(a, b)| u64::from(a) | (u64::from(b) << 1))
        .collect();

    let frames_decoded = |kind: WrapperKind| {
        let mut b = SocBuilder::new();
        let ip = b.add_ip("viterbi", Box::new(ViterbiPearl::new("v")), kind);
        b.feed("ctrl", ip.inputs[0], vec![1], 0.0, 1);
        b.feed("syms", ip.inputs[1], symbols.clone(), 0.0, 2);
        b.capture("err", ip.outputs[2], 0.0, 3);
        let mut soc = b.build();
        soc.run(3000).unwrap();
        soc.received("err").len()
    };
    assert_eq!(frames_decoded(WrapperKind::Sp), 1);
    assert_eq!(frames_decoded(WrapperKind::Comb), 0);
}

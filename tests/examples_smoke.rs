//! Smoke tests mirroring the core logic of every `examples/*.rs` flow,
//! so the examples cannot silently rot: each test builds the same SoC /
//! synthesis pipeline as its example (scaled down where the example is
//! sized for demo output) and asserts the tokens actually received.

use latency_insensitive::core::{synthesize_wrapper, SocBuilder, SpCompression};
use latency_insensitive::hdl::{
    capture_golden, emit_testbench, emit_verilog, emit_vhdl, parse_verilog,
};
use latency_insensitive::ip::{
    ConvEncoder, DataflowPearl, ReedSolomon, RsPearl, ViterbiPearl, K, N, T, VITERBI_FRAME_BITS,
};
use latency_insensitive::netlist::NetlistStats;
use latency_insensitive::proto::{AccumulatorPearl, Pearl};
use latency_insensitive::schedule::dataflow::{DataflowOp, DataflowProgram};
use latency_insensitive::schedule::{
    burst_buffer_requirements, compress, compress_bursty, PortSpec, ScheduleBuilder,
};
use latency_insensitive::synth::TechParams;
use latency_insensitive::wrappers::{generate_sp, FsmEncoding, WrapperKind};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// `examples/quickstart.rs`: accumulator pearl behind an SP wrapper,
/// two bursty feeds, deterministic running sums, then synthesis.
#[test]
fn quickstart_flow() {
    let pearl = AccumulatorPearl::new("acc", 2, 1, 4);
    let schedule = pearl.schedule().clone();

    let mut b = SocBuilder::new();
    let ip = b.add_ip("acc", Box::new(pearl), WrapperKind::Sp);
    b.feed("xs", ip.inputs[0], (1..=10).map(|v| v * 100), 0.3, 42);
    b.feed("ys", ip.inputs[1], 1..=10, 0.2, 43);
    b.capture("sums", ip.outputs[0], 0.1, 44);
    let mut soc = b.build();
    soc.run(500).expect("SoC run");

    // Period k consumes (100k, k), so the running sum after k periods
    // is 101 * k(k+1)/2 — closed form for every received token.
    let sums = soc.received("sums");
    assert!(sums.len() >= 5, "expected several sums, got {sums:?}");
    assert!(sums.len() <= 10);
    for (i, &got) in sums.iter().enumerate() {
        let k = (i + 1) as u64;
        assert_eq!(got, 101 * k * (k + 1) / 2, "sum #{i}");
    }
    assert_eq!(soc.violations(), 0);

    let report = synthesize_wrapper(
        WrapperKind::Sp,
        &schedule,
        SpCompression::Safe,
        &TechParams::default(),
    )
    .expect("synthesize quickstart wrapper");
    assert!(report.report.area.slices > 0);
}

/// `examples/viterbi_soc.rs`: convolutionally encoded frames with one
/// injected channel error decode exactly through the gate-level
/// SP-wrapped Viterbi pearl.
#[test]
fn viterbi_soc_flow() {
    let mut rng = StdRng::seed_from_u64(2005);
    let frames = 2;

    let mut all_bits = Vec::new();
    let mut symbol_stream = Vec::new();
    for _ in 0..frames {
        let bits: Vec<bool> = (0..VITERBI_FRAME_BITS).map(|_| rng.random()).collect();
        let mut coded = ConvEncoder::encode_block(&bits);
        let hit = rng.random_range(0..coded.len());
        coded[hit].0 = !coded[hit].0;
        for (a, b) in coded {
            symbol_stream.push(u64::from(a) | (u64::from(b) << 1));
        }
        all_bits.push(bits);
    }

    let mut b = SocBuilder::new();
    let ip = b.add_ip_netlist("viterbi", Box::new(ViterbiPearl::new("v")), WrapperKind::Sp);
    let ctrl_stage = b.channel("ctrl_stage", 8);
    let sym_stage = b.channel("sym_stage", 2);
    b.feed(
        "ctrl",
        ctrl_stage,
        (0..frames as u64).map(|f| 0x10 + f),
        0.0,
        1,
    );
    b.feed("syms", sym_stage, symbol_stream, 0.25, 2);
    b.link(ctrl_stage, ip.inputs[0], 2);
    b.link(sym_stage, ip.inputs[1], 4);
    b.capture("data", ip.outputs[0], 0.0, 3);
    b.capture("status", ip.outputs[1], 0.0, 4);
    b.capture("err", ip.outputs[2], 0.0, 5);
    let mut soc = b.build();

    let done = soc
        .run_until(200_000, |s| s.received("err").len() >= frames)
        .expect("SoC run");
    assert!(done, "SoC did not finish in the cycle budget");
    assert_eq!(soc.violations(), 0);

    let data = soc.received("data");
    for (f, bits) in all_bits.iter().enumerate() {
        let words = [data[f * 2], data[f * 2 + 1]];
        let decoded: Vec<bool> = (0..VITERBI_FRAME_BITS)
            .map(|i| (words[i / 64] >> (i % 64)) & 1 == 1)
            .collect();
        assert_eq!(&decoded, bits, "frame {f} must decode exactly");
    }
}

/// `examples/rs_pipeline.rs`: the streaming RS(255,239) decoder repairs
/// up to T symbol errors per codeword behind the SP wrapper.
#[test]
fn rs_pipeline_flow() {
    let rs = ReedSolomon::new();
    let mut rng = StdRng::seed_from_u64(239);
    let blocks = 2;

    let mut clean_stream: Vec<u64> = Vec::new();
    let mut noisy_stream: Vec<u64> = Vec::new();
    for _ in 0..blocks {
        let msg: Vec<u8> = (0..K).map(|_| rng.random()).collect();
        let cw = rs.encode(&msg);
        let mut noisy = cw.clone();
        let n_err = rng.random_range(1..=T);
        for _ in 0..n_err {
            let pos = rng.random_range(0..N);
            noisy[pos] ^= rng.random_range(1..=255) as u8;
        }
        clean_stream.extend(cw.iter().map(|&s| u64::from(s)));
        noisy_stream.extend(noisy.iter().map(|&s| u64::from(s)));
    }
    noisy_stream.extend(std::iter::repeat_n(0u64, N));

    let mut b = SocBuilder::new();
    let ip = b.add_ip("rs", Box::new(RsPearl::new("rs")), WrapperKind::Sp);
    b.feed("syms", ip.inputs[0], noisy_stream, 0.1, 11);
    b.feed("markers", ip.inputs[1], 0..1000, 0.0, 12);
    b.capture("corrected", ip.outputs[0], 0.0, 13);
    b.capture("status", ip.outputs[1], 0.0, 14);
    let mut soc = b.build();

    let want = (N - 1) + blocks * N;
    let done = soc
        .run_until(200_000, |s| s.received("corrected").len() >= want)
        .expect("SoC run");
    assert!(done, "SoC did not emit all corrected blocks in budget");

    let got = soc.received("corrected");
    let fill = N - 1;
    for blk in 0..blocks {
        assert_eq!(
            &got[fill + blk * N..fill + (blk + 1) * N],
            &clean_stream[blk * N..(blk + 1) * N],
            "block {blk} must be fully repaired"
        );
    }
}

/// `examples/hdl_export.rs`: SP controller → Verilog/VHDL text, Verilog
/// round-trip preserves the netlist census, and the self-checking
/// testbench captures golden cycles (all in memory — no files).
#[test]
fn hdl_export_flow() {
    let pearl = ViterbiPearl::new("viterbi");
    let program = compress_bursty(pearl.schedule());
    let module = generate_sp(&program).expect("generate SP controller");

    let verilog = emit_verilog(&module);
    let vhdl = emit_vhdl(&module);
    assert!(
        verilog.lines().count() > 10,
        "Verilog should be non-trivial"
    );
    assert!(vhdl.lines().count() > 10, "VHDL should be non-trivial");

    let parsed = parse_verilog(&verilog).expect("parse emitted Verilog");
    assert_eq!(NetlistStats::of(&parsed), NetlistStats::of(&module));

    let stimuli: Vec<Vec<u64>> = (0..24)
        .map(|t| vec![u64::from(t == 0), 0b11u64, 0b111u64])
        .collect();
    let cycles = capture_golden(&module, &stimuli);
    assert_eq!(cycles.len(), stimuli.len());
    let tb = emit_testbench(&module, &cycles);
    assert!(tb.contains("module"), "testbench should be Verilog text");
}

/// `examples/hls_flow.rs`: dataflow description → schedule → pearl →
/// SP-wrapped SoC producing the eight 8-point moving averages.
#[test]
fn hls_flow_flow() {
    let program = DataflowProgram::new(
        1,
        1,
        vec![
            DataflowOp::repeat(8, vec![DataflowOp::read(0)]),
            DataflowOp::compute(4),
            DataflowOp::write(0),
        ],
    );
    let schedule = program.lower().expect("lower dataflow program");
    assert!(compress(&schedule).len() >= compress_bursty(&schedule).len());

    let req = burst_buffer_requirements(&schedule);
    let _ = req.safe_with(2);

    let pearl = DataflowPearl::new(
        "avg8",
        vec![PortSpec::input("x", 32), PortSpec::output("y", 32)],
        &program,
        |collected| {
            let xs = &collected[0];
            let avg = xs.iter().sum::<u64>() / xs.len() as u64;
            vec![vec![avg]]
        },
    )
    .expect("build dataflow pearl");

    let mut b = SocBuilder::new();
    let ip = b.add_ip("avg8", Box::new(pearl), WrapperKind::Sp);
    b.feed("samples", ip.inputs[0], (1..=64).map(|v| v * 10), 0.2, 5);
    b.capture("avgs", ip.outputs[0], 0.0, 6);
    let mut soc = b.build();
    soc.run_until_quiescent(10_000, 50).expect("SoC run");

    // Window k averages samples 8k+1..=8k+8 (scaled by 10):
    // mean = 10 * (8k + 4.5) truncated.
    let avgs = soc.received("avgs");
    assert_eq!(avgs.len(), 8);
    for (k, &got) in avgs.iter().enumerate() {
        let base: u64 = (1..=8).map(|i| (k as u64 * 8 + i) * 10).sum();
        assert_eq!(got, base / 8, "average #{k}");
    }
    assert_eq!(soc.violations(), 0);
}

/// `examples/wrapper_explorer.rs`: all four wrapper models synthesize
/// on the same DSP-flavoured schedule, and the SP's cost is independent
/// of the quiet-period length while schedule-shaped wrappers grow.
#[test]
fn wrapper_explorer_flow() {
    let schedule = ScheduleBuilder::new(2, 2)
        .read(0)
        .repeat_io([1], [], 16)
        .quiet(100)
        .repeat_io([], [0], 8)
        .io([], [1])
        .build()
        .expect("build explorer schedule");

    let params = TechParams::default();
    for (kind, compression) in [
        (WrapperKind::Comb, SpCompression::Safe),
        (WrapperKind::Fsm(FsmEncoding::OneHot), SpCompression::Safe),
        (WrapperKind::Fsm(FsmEncoding::Binary), SpCompression::Safe),
        (WrapperKind::ShiftReg, SpCompression::Safe),
        (WrapperKind::Sp, SpCompression::Safe),
        (WrapperKind::Sp, SpCompression::Burst),
    ] {
        let w = synthesize_wrapper(kind, &schedule, compression, &params)
            .unwrap_or_else(|e| panic!("{kind:?}/{compression:?} failed: {e}"));
        assert!(
            w.report.area.slices > 0,
            "{kind:?} produced an empty wrapper"
        );
        assert!(w.report.timing.fmax_mhz > 0.0);
        if kind == WrapperKind::Sp {
            assert!(w.sp_ops.is_some());
        }
    }
}

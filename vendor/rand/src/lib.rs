//! Vendored, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to a crates registry, so
//! the workspace vendors the narrow API surface it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! extension methods `random`, `random_range`, and `random_bool`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! high-quality, and fully deterministic for a given seed, which is all
//! the test suite and schedule generators require. It makes no attempt
//! to be reproducible with upstream `rand` streams.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of random `u64` words.
pub trait RngCore {
    /// Returns the next word in the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the 64-bit seed into 256 bits of
            // state; guarantees a non-zero state for any seed.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        /// Returns the raw 256-bit xoshiro256** state, for
        /// checkpointing a generator mid-stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        ///
        /// The restored generator continues the stream exactly where the
        /// captured one left off. An all-zero state (never produced by
        /// seeding) would be a fixed point of xoshiro256**, so it is
        /// mapped to `seed_from_u64(0)` instead.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return <Self as super::SeedableRng>::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Types producible by [`RngExt::random`].
pub trait RandomValue {
    /// Draws a uniformly distributed value.
    fn random_from(rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_random_uint {
    ($($t:ty),*) => {$(
        impl RandomValue for $t {
            fn random_from(rng: &mut impl RngCore) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RandomValue for bool {
    fn random_from(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl RandomValue for f64 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl RandomValue for f32 {
    fn random_from(rng: &mut impl RngCore) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types over which a uniform range can be sampled.
pub trait SampleUniform: Copy {
    /// Draws a uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Panics if the range is empty.
    fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self;
}

macro_rules! impl_uniform_via_u64 {
    ($($t:ty => $to:expr, $from:expr;)*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self {
                let to = $to;
                let from = $from;
                let (lo, hi) = (to(lo), to(hi));
                if inclusive {
                    assert!(lo <= hi, "random_range called with an empty range");
                    let span = hi - lo;
                    if span == u64::MAX {
                        return from(rng.next_u64());
                    }
                    from(lo + uniform_below(rng, span + 1))
                } else {
                    assert!(lo < hi, "random_range called with an empty range");
                    from(lo + uniform_below(rng, hi - lo))
                }
            }
        }
    )*};
}
impl_uniform_via_u64! {
    u8 => |v: u8| v as u64, |v: u64| v as u8;
    u16 => |v: u16| v as u64, |v: u64| v as u16;
    u32 => |v: u32| v as u64, |v: u64| v as u32;
    u64 => |v: u64| v, |v: u64| v;
    usize => |v: usize| v as u64, |v: u64| v as usize;
    // Offset encoding keeps ordering for signed types: MIN -> 0.
    i8 => |v: i8| (v as i64).wrapping_sub(i64::MIN) as u64, |v: u64| (v as i64).wrapping_add(i64::MIN) as i8;
    i16 => |v: i16| (v as i64).wrapping_sub(i64::MIN) as u64, |v: u64| (v as i64).wrapping_add(i64::MIN) as i16;
    i32 => |v: i32| (v as i64).wrapping_sub(i64::MIN) as u64, |v: u64| (v as i64).wrapping_add(i64::MIN) as i32;
    i64 => |v: i64| v.wrapping_sub(i64::MIN) as u64, |v: u64| (v as i64).wrapping_add(i64::MIN);
    isize => |v: isize| (v as i64).wrapping_sub(i64::MIN) as u64, |v: u64| (v as i64).wrapping_add(i64::MIN) as isize;
}

macro_rules! impl_uniform_float {
    ($($t:ty => $bits:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self {
                assert!(lo <= hi, "random_range called with an empty range");
                let mantissa = (rng.next_u64() >> (64 - $bits)) as $t;
                // Exclusive: unit in [0, 1) via /2^bits. Inclusive:
                // unit in [0, 1] via /(2^bits - 1), so `hi` is reachable.
                let denom = if inclusive {
                    ((1u64 << $bits) - 1) as $t
                } else {
                    (1u64 << $bits) as $t
                };
                lo + (mantissa / denom) * (hi - lo)
            }
        }
    )*};
}
impl_uniform_float!(f32 => 24, f64 => 53);

/// Unbiased sample in `[0, bound)` by rejection (Lemire-style threshold
/// kept simple: plain rejection on the top range).
fn uniform_below(rng: &mut impl RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

/// Ranges acceptable to [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range. Panics if empty.
    fn sample_from(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut impl RngCore) -> T {
        T::sample_range(*self.start(), *self.end(), true, rng)
    }
}

/// Convenience sampling methods, blanket-implemented for every generator.
pub trait RngExt: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn random<T: RandomValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::random_from(self)
    }

    /// Draws a uniform sample from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::random_from(self) < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1u8..=255);
            assert!(w >= 1);
            let x = rng.random_range(0i32..=0);
            assert_eq!(x, 0);
        }
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.random_range(0.25f64..=0.75);
            assert!((0.25..=0.75).contains(&v));
            let w = rng.random_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&w));
        }
        // Inclusive upper bound is reachable: degenerate range hits it
        // exactly, and the unit lattice includes 1.0.
        assert_eq!(rng.random_range(2.5f64..=2.5), 2.5);
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(rng.random_bool(1.0));
        assert!(!rng.random_bool(0.0));
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.random::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        // The degenerate all-zero state is rejected, not propagated.
        let mut z = StdRng::from_state([0; 4]);
        assert_eq!(z.random::<u64>(), StdRng::seed_from_u64(0).random::<u64>());
    }

    #[test]
    fn distinct_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }
}

//! Vendored, dependency-free stand-in for `serde_json`.
//!
//! Renders the vendored [`serde::Value`] tree to JSON text and parses it
//! back. Floats are printed with Rust's shortest round-trip formatting
//! (`{:?}`), so `f64` values survive a round trip bit-exactly (NaN and
//! infinities excepted, which JSON cannot represent).

#![forbid(unsafe_code)]

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Serialization/deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serializes `value` to indented JSON text.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------- writer

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if !x.is_finite() {
                return Err(Error(format!("cannot serialize non-finite float {x}")));
            }
            // {:?} is Rust's shortest representation that round-trips.
            let s = format!("{x:?}");
            out.push_str(&s);
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1)?;
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1)?;
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error(format!("invalid literal at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(entries));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over a plain run, then re-validate as UTF-8.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs for astral-plane chars.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.eat_literal("\\u") {
                                    return Err(Error("unpaired surrogate".into()));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| Error("invalid surrogate pair".into()))?
                            } else {
                                char::from_u32(cp)
                                    .ok_or_else(|| Error(format!("invalid codepoint {cp:#x}")))?
                            };
                            s.push(c);
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error("truncated \\u escape".into()));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error("invalid \\u escape".into()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|_| Error(format!("invalid \\u escape `{hex}`")))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if text.is_empty() || text == "-" {
            return Err(Error(format!("invalid number at byte {start}")));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid float `{text}`")))
        } else if text.starts_with('-') {
            // Parse the signed text whole so i64::MIN round-trips.
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error(format!("invalid integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("a\"b\\c\nd".into())),
            (
                "nums".into(),
                Value::Array(vec![Value::UInt(u64::MAX), Value::Int(-7)]),
            ),
            ("pi".into(), Value::Float(std::f64::consts::PI)),
            ("none".into(), Value::Null),
            ("ok".into(), Value::Bool(true)),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let mut s = String::new();
        write_value(&mut s, &v, None, 0).unwrap();
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let back = p.parse_value().unwrap();
        assert_eq!(back, v);
        // pretty output parses to the same tree
        let mut pretty = String::new();
        write_value(&mut pretty, &v, Some(2), 0).unwrap();
        let mut p2 = Parser {
            bytes: pretty.as_bytes(),
            pos: 0,
        };
        p2.skip_ws();
        assert_eq!(p2.parse_value().unwrap(), v);
    }

    #[test]
    fn i64_extremes_round_trip() {
        for n in [i64::MIN, i64::MIN + 1, -1, 0, i64::MAX] {
            let s = to_string(&n).unwrap();
            let back: i64 = from_str(&s).unwrap();
            assert_eq!(back, n);
        }
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1f64 + 0.2;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn unicode_escapes() {
        let s: String = from_str(r#""Aé😀""#).unwrap();
        assert_eq!(s, "Aé😀");
    }
}

//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment cannot reach a crates registry, so this crate
//! implements the subset of serde the workspace relies on: the
//! [`Serialize`] / [`Deserialize`] traits, derive macros for plain
//! structs and enums (no `#[serde(...)]` attributes), and a
//! self-describing [`Value`] tree that `serde_json` renders to and
//! parses from JSON text. Round-trip fidelity — not wire compatibility
//! with upstream serde — is the contract.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing data tree, the interchange format between
/// [`Serialize`], [`Deserialize`], and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (preserves full `u64` precision).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key-value map (insertion order preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// Borrows the array elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// One-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds a "wanted X, found Y" error.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

/// Conversion of a Rust value into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` into the value tree.
    fn to_value(&self) -> Value;
}

/// Reconstruction of a Rust value from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Looks up a field in an object; used by the derive expansion.
pub fn __get_field<'a>(entries: &'a [(String, Value)], name: &str) -> Result<&'a Value, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}`")))
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::expected("unsigned integer", other)),
                }
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::UInt(n as u64) } else { Value::Int(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match v {
                    Value::UInt(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("integer {n} out of range for {}", stringify!($t))))?,
                    Value::Int(n) => *n,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::expected("tuple array", v))?;
                let want = [$($n),+].len();
                if items.len() != want {
                    return Err(DeError(format!(
                        "expected tuple of {want} elements, found {}", items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("map array", v))?;
        items.iter().map(<(K, V)>::from_value).collect()
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_array()
            .ok_or_else(|| DeError::expected("map array", v))?;
        items.iter().map(<(K, V)>::from_value).collect()
    }
}

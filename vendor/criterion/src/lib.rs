//! Vendored, dependency-free stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use —
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], `bench_function`,
//! `bench_with_input`, `sample_size`, and the [`criterion_group!`] /
//! [`criterion_main!`] macros — backed by a simple wall-clock loop: one
//! warm-up run, then `sample_size` timed samples whose per-iteration
//! mean, min, and max are printed. No statistics engine, no HTML
//! reports; good enough to record baselines and compare runs by eye or
//! with `BENCH_*.json` snapshots.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for compatibility; benches may use either this or
/// `std::hint::black_box`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `"{name}/{parameter}"`, criterion's conventional form.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Times closures handed to `Bencher::iter`.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once per sample, timing each run.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.samples.push(start.elapsed());
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs and reports one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, |b| f(b));
        self.criterion.ran += 1;
        self
    }

    /// Runs and reports one benchmark parameterised by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, |b| f(b, input));
        self.criterion.ran += 1;
        self
    }

    /// Ends the group (report-flush hook in real criterion; a no-op here).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 20, |b| f(b));
        self.ran += 1;
        self
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut f: F) {
    // Warm-up (not recorded).
    let mut warmup = Bencher::default();
    f(&mut warmup);

    let mut bencher = Bencher::default();
    while bencher.samples.len() < sample_size {
        let before = bencher.samples.len();
        f(&mut bencher);
        if bencher.samples.len() == before {
            // The closure never called `iter`; avoid looping forever.
            break;
        }
    }
    if bencher.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    println!(
        "{name:<60} time: [{min:>12?} {mean:>12?} {max:>12?}]  ({} samples)",
        bencher.samples.len()
    );
}

/// Declares a group-runner function invoking each bench function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 4), &4u32, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        assert_eq!(c.ran, 2);
    }
}

//! Vendored, dependency-free stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range
//! and tuple strategies, [`arbitrary::any`], `prop::collection::{vec,
//! btree_map}`, the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, and the `prop_assert*` /
//! `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking (failures report the seed and
//! case index instead), and the RNG seed is **fixed per test name** so
//! runs are deterministic in CI. Set `PROPTEST_SEED=<u64>` to explore a
//! different stream locally.

#![forbid(unsafe_code)]

pub use rand;

/// Test-case count configuration.
pub mod config {
    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases each property must pass.
        pub cases: usize,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: usize) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Upstream defaults to 256; 64 keeps the heavier gate-level
            // equivalence properties fast while still exploring broadly.
            ProptestConfig { cases: 64 }
        }
    }
}

/// Case outcomes used by the generated runner.
pub mod runner {
    /// Why a generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
        /// A `prop_assert*` failed; the whole property fails.
        Fail(String),
    }

    /// Resolves the RNG seed for a property: `PROPTEST_SEED` env var if
    /// set, otherwise a stable FNV-1a hash of the test name. Fixed
    /// seeding keeps CI deterministic.
    pub fn resolve_seed(test_name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(n) = s.trim().parse::<u64>() {
                return n;
            }
        }
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Strategies: composable recipes for generating test inputs.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{RngExt, SampleUniform};
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of type `Value`.
    ///
    /// Unlike upstream proptest there is no intermediate value tree and
    /// no shrinking: `generate` draws a sample directly.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one sample.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates an intermediate value, then samples the strategy
        /// `f` builds from it.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl<T: SampleUniform> Strategy for Range<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T: SampleUniform> Strategy for RangeInclusive<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    macro_rules! impl_strategy_tuple {
        ($(($($t:ident $n:tt),+))*) => {$(
            impl<$($t: Strategy),+> Strategy for ($($t,)+) {
                type Value = ($($t::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$n.generate(rng),)+)
                }
            }
        )*};
    }
    impl_strategy_tuple! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
    }
}

/// `any::<T>()` — the canonical strategy for a type.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{RandomValue, RngExt};
    use std::marker::PhantomData;

    /// Types with a canonical uniform strategy.
    pub trait Arbitrary {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl<T: RandomValue> Arbitrary for T {
        fn arbitrary(rng: &mut StdRng) -> T {
            rng.random()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (uniform over its domain).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::RngExt;
        use std::collections::BTreeMap;
        use std::ops::{Range, RangeInclusive};

        /// Admissible sizes for a generated collection.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty collection size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                assert!(r.start() <= r.end(), "empty collection size range");
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut StdRng) -> usize {
                rng.random_range(self.lo..=self.hi_inclusive)
            }
        }

        /// Strategy for `Vec<T>` with sizes drawn from `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// See [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = self.size.sample(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap<K, V>` with entry counts drawn from
        /// `size`. Duplicate keys are re-drawn a bounded number of
        /// times, so the requested size is met whenever the key domain
        /// is large enough.
        pub fn btree_map<K, V>(
            keys: K,
            values: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            BTreeMapStrategy {
                keys,
                values,
                size: size.into(),
            }
        }

        /// See [`btree_map`].
        pub struct BTreeMapStrategy<K, V> {
            keys: K,
            values: V,
            size: SizeRange,
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            K::Value: Ord,
            V: Strategy,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let n = self.size.sample(rng);
                let mut map = BTreeMap::new();
                let mut attempts = 0usize;
                while map.len() < n && attempts < n * 16 + 16 {
                    attempts += 1;
                    let k = self.keys.generate(rng);
                    if let std::collections::btree_map::Entry::Vacant(e) = map.entry(k) {
                        e.insert(self.values.generate(rng));
                    }
                }
                map
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::config::ProptestConfig;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::runner::TestCaseError::Fail(
                ::std::format!(
                    "prop_assert!({}) failed at {}:{}",
                    stringify!($cond),
                    file!(),
                    line!()
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::runner::TestCaseError::Fail(
                ::std::format!(
                    "prop_assert! failed at {}:{}: {}",
                    file!(),
                    line!(),
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::core::result::Result::Err($crate::runner::TestCaseError::Fail(
                ::std::format!(
                    "prop_assert_eq! failed at {}:{}\n  left: {:?}\n right: {:?}",
                    file!(),
                    line!(),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if __l != __r {
            return ::core::result::Result::Err($crate::runner::TestCaseError::Fail(
                ::std::format!(
                    "prop_assert_eq! failed at {}:{}: {}\n  left: {:?}\n right: {:?}",
                    file!(),
                    line!(),
                    ::std::format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return ::core::result::Result::Err($crate::runner::TestCaseError::Fail(
                ::std::format!(
                    "prop_assert_ne! failed at {}:{}\n  both: {:?}",
                    file!(),
                    line!(),
                    __l
                ),
            ));
        }
    }};
}

/// Rejects the current case (it is retried with fresh inputs) unless
/// `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::config::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::config::ProptestConfig = $cfg;
                let __seed = $crate::runner::resolve_seed(stringify!($name));
                let mut __rng = <$crate::rand::rngs::StdRng as $crate::rand::SeedableRng>::seed_from_u64(__seed);
                let mut __passed = 0usize;
                let mut __rejected = 0usize;
                while __passed < __cfg.cases {
                    let __outcome: ::core::result::Result<(), $crate::runner::TestCaseError> =
                        (|| {
                            $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __passed += 1,
                        ::core::result::Result::Err($crate::runner::TestCaseError::Reject(__why)) => {
                            __rejected += 1;
                            if __rejected > __cfg.cases * 64 + 256 {
                                panic!(
                                    "property {} rejected too many cases via prop_assume!({})",
                                    stringify!($name),
                                    __why
                                );
                            }
                        }
                        ::core::result::Result::Err($crate::runner::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "property {} failed on case {} (seed {:#x}):\n{}",
                                stringify!($name),
                                __passed,
                                __seed,
                                __msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn seeds_are_stable_per_test_name() {
        // CI determinism: the same property name always maps to the
        // same RNG stream (unless PROPTEST_SEED overrides it).
        assert_eq!(
            crate::runner::resolve_seed("compress_expand_round_trip"),
            crate::runner::resolve_seed("compress_expand_round_trip"),
        );
        assert_ne!(
            crate::runner::resolve_seed("compress_expand_round_trip"),
            crate::runner::resolve_seed("normalize_idempotent"),
        );
    }

    #[test]
    fn strategies_are_deterministic_for_a_seed() {
        let strat = prop::collection::vec((any::<u64>(), 0usize..10), 1..20).prop_map(|v| {
            v.iter().fold(v.len() as u64, |acc, (a, b)| {
                acc.wrapping_add(a ^ *b as u64)
            })
        });
        let sample = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..32)
                .map(|_| strat.generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(9), sample(9));
        assert_ne!(sample(9), sample(10));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro pipeline itself: multi-binding, assume, and assert.
        #[test]
        fn macro_plumbing_works(x in 1usize..100, y in any::<u64>()) {
            prop_assume!(x != 13);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(x + 1, 1 + x, "commutativity for x={}", x);
            prop_assert_ne!(y.wrapping_add(1), y);
        }
    }
}

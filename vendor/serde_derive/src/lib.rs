//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports plain structs (named, tuple, unit) and enums (unit, tuple,
//! and struct variants) without generics or `#[serde(...)]` attributes —
//! exactly the shapes this workspace derives. The implementation parses
//! the item's token stream by hand (no `syn`/`quote`, which are
//! unavailable offline) and emits the impl as a string, which is
//! re-parsed into a `TokenStream`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives `serde::Serialize` (vendored value-tree flavour).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    emit_serialize(&name, &shape)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (vendored value-tree flavour).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_item(input);
    emit_deserialize(&name, &shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored) does not support generic types: {name}");
    }

    let shape = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for {name}: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("unsupported enum body for {name}: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}` items"),
    };
    (name, shape)
}

/// Advances past any `#[...]` attributes (incl. doc comments) and a
/// `pub` / `pub(...)` visibility qualifier.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) / pub(super)
                }
            }
            _ => break,
        }
    }
}

/// Extracts field names from `{ name: Type, ... }`. Types are skipped by
/// consuming tokens until a comma at angle-bracket depth zero (token
/// groups hide their own commas; only `Map<K, V>`-style commas need the
/// depth tracking).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field name, found {other:?}"),
        }
        let mut angle_depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    fields
}

/// Counts the comma-separated fields of a tuple-struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut saw_tokens_since_comma = false;
    for tok in &tokens {
        if let TokenTree::Punct(p) = tok {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    count += 1;
                    saw_tokens_since_comma = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_tokens_since_comma = true;
    }
    if !saw_tokens_since_comma {
        count -= 1; // trailing comma
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let name = id.to_string();
        i += 1;
        let kind = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) up to the next comma.
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            while let Some(tok) = tokens.get(i) {
                if matches!(tok, TokenTree::Punct(p) if p.as_char() == ',') {
                    break;
                }
                i += 1;
            }
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn emit_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("__v{i}")).collect();
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Array(::std::vec![{items}]))]),",
                                binds = binds.join(", "),
                                items = items.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {fields} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from(\"{vname}\"), ::serde::Value::Object(::std::vec![{entries}]))]),",
                                fields = fields.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn emit_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::__get_field(__obj, \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "let __obj = __v.as_object().ok_or_else(|| ::serde::DeError::expected(\"struct {name}\", __v))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| ::serde::DeError::expected(\"tuple struct {name}\", __v))?;\n\
                 if __arr.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                         \"expected {n} elements for {name}, found {{}}\", __arr.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitStruct => format!(
            "match __v {{\n\
                 ::serde::Value::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\"unit struct {name}\", __other)),\n\
             }}"
        ),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),", vname = v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vname = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(n) => {
                            let inits: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __arr = __payload.as_array().ok_or_else(|| ::serde::DeError::expected(\"payload array for {name}::{vname}\", __payload))?;\n\
                                     if __arr.len() != {n} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                                             \"expected {n} elements for {name}::{vname}, found {{}}\", __arr.len())));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vname}({inits}))\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::__get_field(__obj, \"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vname}\" => {{\n\
                                     let __obj = __payload.as_object().ok_or_else(|| ::serde::DeError::expected(\"payload object for {name}::{vname}\", __payload))?;\n\
                                     ::std::result::Result::Ok({name}::{vname} {{ {inits} }})\n\
                                 }}",
                                inits = inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                             \"unknown unit variant `{{}}` of {name}\", __other))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let __payload = &__entries[0].1;\n\
                         match __entries[0].0.as_str() {{\n\
                             {data_arms}\n\
                             __other => ::std::result::Result::Err(::serde::DeError(::std::format!(\n\
                                 \"unknown variant `{{}}` of {name}\", __other))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::DeError::expected(\"enum {name}\", __other)),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                data_arms = data_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(unused_variables)]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    )
}
